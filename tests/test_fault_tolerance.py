"""Fault tolerance: retries, timeouts, crash recovery and checkpointed resume.

The load-bearing guarantees:

* retryable failures spend attempts, deterministic failures never do, and
  both executors classify an over-budget job as ``timed_out``;
* a worker killed mid-wave never sinks the run — completed outcomes are
  salvaged, the pool is rebuilt, and only unfinished jobs re-dispatch
  (without consuming retry budget);
* a campaign killed mid-run and resumed with ``resume=True`` produces a
  report *byte-identical* to an uninterrupted run, re-executing only the
  unfinished tail;
* every fault is injected deterministically through the env-guarded
  :mod:`repro.runtime.faults` harness — no real crashes required.
"""

from __future__ import annotations

import base64
import concurrent.futures
import dataclasses
import json
import logging
import os
import sqlite3
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.benchmarks import DotProductBenchmark
from repro.errors import ConfigurationError, TransientError
from repro.experiments import ExperimentSpec
from repro.experiments.spec import RuntimeSpec
from repro.runtime import (
    FAULT_PLAN_ENV,
    AgentSpec,
    CampaignCheckpoint,
    EvaluationStore,
    ExplorationJob,
    FaultPlan,
    FaultRule,
    ProcessExecutor,
    RetryPolicy,
    SerialExecutor,
    inject_faults,
    is_retryable,
    job_fingerprint,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

#: A fast retry policy for tests: no real sleeping between attempts.
FAST = {"backoff_base_s": 0.0}


def _crashing_factory(environment, seed):
    raise RuntimeError("boom")


def _job(seed=0, max_steps=10, label="dot", agent=None):
    return ExplorationJob(
        benchmark_label=label,
        benchmark=DotProductBenchmark(length=12),
        seed=seed,
        agent=agent if agent is not None else AgentSpec("random"),
        max_steps=max_steps,
    )


def _jobs(count, **kwargs):
    return [_job(seed=seed, **kwargs) for seed in range(count)]


def _install(plan, tmp_path, monkeypatch):
    env = plan.install(tmp_path / "faults")
    monkeypatch.setenv(FAULT_PLAN_ENV, env[FAULT_PLAN_ENV])


def _result_signature(outcome):
    """The result-determining content of one ok outcome."""
    return [record.deltas for record in outcome.result.records]


# --------------------------------------------------------------- retry policy


class TestRetryPolicy:
    def test_default_policy_is_run_once(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 1
        assert policy.job_timeout_s is None
        assert not policy.enabled

    def test_enabled_by_attempts_or_timeout(self):
        assert RetryPolicy(max_attempts=2).enabled
        assert RetryPolicy(job_timeout_s=1.0).enabled
        assert not RetryPolicy(max_attempts=1).enabled

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"max_attempts": -1},
        {"max_attempts": True},
        {"job_timeout_s": 0},
        {"job_timeout_s": -2.0},
        {"backoff_base_s": -0.1},
        {"backoff_factor": -1.0},
    ])
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)

    def test_backoff_is_deterministic_per_fingerprint(self):
        policy = RetryPolicy(max_attempts=3)
        fingerprint = job_fingerprint(_job())
        assert policy.backoff_s(fingerprint, 1) == policy.backoff_s(fingerprint, 1)
        # Jitter scales the raw exponential delay into [0.5, 1.0] * raw.
        for attempt, raw in ((1, 0.05), (2, 0.10), (3, 0.20)):
            delay = policy.backoff_s(fingerprint, attempt)
            assert 0.5 * raw <= delay <= raw

    def test_backoff_decorrelates_jobs_and_respects_cap(self):
        policy = RetryPolicy(max_attempts=2, backoff_max_s=0.1)
        first = job_fingerprint(_job(seed=0))
        second = job_fingerprint(_job(seed=1))
        assert policy.backoff_s(first, 1) != policy.backoff_s(second, 1)
        assert policy.backoff_s(first, 50) <= 0.1


class TestIsRetryable:
    def test_transient_error_is_retryable(self):
        assert is_retryable(TransientError("lost a worker"))

    def test_repro_errors_are_deterministic(self):
        assert not is_retryable(ConfigurationError("bad spec"))

    @pytest.mark.parametrize("error", [
        ConnectionError("gone"),
        TimeoutError("late"),
        sqlite3.OperationalError("database is locked"),
        # Distinct from builtin TimeoutError before Python 3.11.
        concurrent.futures.TimeoutError(),
    ])
    def test_infrastructure_conditions_are_retryable(self, error):
        assert is_retryable(error)

    @pytest.mark.parametrize("error", [ValueError("bad"), RuntimeError("boom")])
    def test_arbitrary_exceptions_default_to_deterministic(self, error):
        assert not is_retryable(error)


class TestJobFingerprint:
    def test_stable_for_equal_jobs(self):
        assert job_fingerprint(_job(seed=3)) == job_fingerprint(_job(seed=3))

    def test_labels_are_presentation_not_content(self):
        # Neither the benchmark label nor the agent label shifts the
        # fingerprint: a relabeled campaign may reuse its checkpoint.
        assert (job_fingerprint(_job(label="dot"))
                == job_fingerprint(_job(label="renamed")))
        assert (job_fingerprint(_job(agent=AgentSpec("random")))
                == job_fingerprint(_job(agent=AgentSpec("random", label="alias"))))

    def test_result_determining_fields_shift_it(self):
        base = job_fingerprint(_job())
        assert job_fingerprint(_job(seed=1)) != base
        assert job_fingerprint(_job(max_steps=11)) != base
        assert (job_fingerprint(_job(agent=AgentSpec("hill-climbing")))
                != base)

    def test_non_jobs_are_rejected(self):
        with pytest.raises(ConfigurationError, match="job_fingerprint"):
            job_fingerprint("not a job")


# ------------------------------------------------------------ fault injection


class TestFaultPlan:
    @pytest.mark.parametrize("kwargs", [
        {"action": "explode"},
        {"action": "kill", "times": -1},
        {"action": "kill", "after": -2},
        {"action": "kill", "exit_code": 300},
        {"action": "delay", "delay_s": -0.5},
        {"action": "transient", "match": ""},
    ])
    def test_invalid_rules_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultRule(**kwargs)

    def test_plan_round_trips_through_json(self):
        plan = FaultPlan(rules=(
            FaultRule(action="kill", match="dot", after=2, exit_code=42),
            FaultRule(action="delay", delay_s=0.5, times=3),
        ), seed=7)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_keys_and_missing_action_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault rule key"):
            FaultRule.from_dict({"action": "kill", "blast_radius": 9})
        with pytest.raises(ConfigurationError, match="requires an 'action'"):
            FaultRule.from_dict({"match": "*"})
        with pytest.raises(ConfigurationError, match="unknown fault plan key"):
            FaultPlan.from_dict({"rules": [], "chaos": True})

    def test_no_plan_installed_is_a_noop(self, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        inject_faults(_job())  # nothing raised, nothing injected

    def test_transient_rule_fires_exactly_times(self, tmp_path, monkeypatch):
        _install(FaultPlan(rules=(FaultRule(action="transient", times=1),)),
                 tmp_path, monkeypatch)
        with pytest.raises(TransientError, match="injected transient fault"):
            inject_faults(_job())
        inject_faults(_job())  # the rule is spent

    def test_after_window_skips_leading_executions(self, tmp_path, monkeypatch):
        _install(FaultPlan(rules=(FaultRule(action="transient", after=1,
                                            times=1),)),
                 tmp_path, monkeypatch)
        inject_faults(_job())  # occurrence 0: skipped
        with pytest.raises(TransientError):
            inject_faults(_job())  # occurrence 1: fires
        inject_faults(_job())  # window exhausted

    def test_match_selects_jobs_by_identity(self, tmp_path, monkeypatch):
        _install(FaultPlan(rules=(FaultRule(action="transient",
                                            match="matmul"),)),
                 tmp_path, monkeypatch)
        inject_faults(_job(label="dot"))  # no match, no fault
        with pytest.raises(TransientError):
            inject_faults(_job(label="matmul_small"))

    def test_reinstall_rearms_spent_rules(self, tmp_path, monkeypatch):
        plan = FaultPlan(rules=(FaultRule(action="transient", times=1),))
        _install(plan, tmp_path, monkeypatch)
        with pytest.raises(TransientError):
            inject_faults(_job())
        inject_faults(_job())
        _install(plan, tmp_path, monkeypatch)  # resets the firing state
        with pytest.raises(TransientError):
            inject_faults(_job())


# ------------------------------------------------------------- serial retries


class TestSerialRetries:
    def test_transient_fault_is_retried_to_success(self, tmp_path, monkeypatch):
        _install(FaultPlan(rules=(FaultRule(action="transient", times=1),)),
                 tmp_path, monkeypatch)
        executor = SerialExecutor(retry_policy=RetryPolicy(max_attempts=2, **FAST))
        [outcome] = executor.run([_job()])
        assert outcome.ok
        assert outcome.attempts == 2 and outcome.retried

    def test_without_budget_the_transient_fault_is_final(self, tmp_path,
                                                         monkeypatch):
        _install(FaultPlan(rules=(FaultRule(action="transient", times=1),)),
                 tmp_path, monkeypatch)
        [outcome] = SerialExecutor().run([_job()])
        assert not outcome.ok
        assert outcome.attempts == 1
        assert "injected transient fault" in outcome.error

    def test_deterministic_errors_never_spend_retries(self):
        executor = SerialExecutor(retry_policy=RetryPolicy(max_attempts=3, **FAST))
        job = _job(agent=AgentSpec.from_factory(_crashing_factory))
        [outcome] = executor.run([job])
        assert not outcome.ok
        assert outcome.attempts == 1  # RuntimeError is not retryable
        assert "RuntimeError: boom" in outcome.error

    def test_cooperative_timeout_spends_a_retry(self, tmp_path, monkeypatch):
        _install(FaultPlan(rules=(FaultRule(action="delay", delay_s=0.4,
                                            times=1),)),
                 tmp_path, monkeypatch)
        executor = SerialExecutor(retry_policy=RetryPolicy(
            max_attempts=2, job_timeout_s=0.1, **FAST))
        [outcome] = executor.run([_job()])
        # Attempt 1 blew the budget and was discarded; attempt 2 (fault
        # spent) came in under it.
        assert outcome.ok
        assert outcome.attempts == 2 and not outcome.timed_out

    def test_cooperative_timeout_is_final_without_budget(self, tmp_path,
                                                         monkeypatch):
        _install(FaultPlan(rules=(FaultRule(action="delay", delay_s=0.4,
                                            times=1),)),
                 tmp_path, monkeypatch)
        executor = SerialExecutor(retry_policy=RetryPolicy(job_timeout_s=0.1))
        [outcome] = executor.run([_job()])
        assert not outcome.ok and outcome.timed_out
        assert "timed out" in outcome.error and "0.1 s" in outcome.error

    def test_executor_rejects_non_policy(self):
        with pytest.raises(ConfigurationError, match="RetryPolicy"):
            SerialExecutor(retry_policy="twice")


# ----------------------------------------------------- process fault recovery


class TestProcessFaultRecovery:
    def test_worker_kill_is_salvaged_and_redispatched(self, tmp_path,
                                                      monkeypatch):
        jobs = _jobs(4)
        clean = [
            _result_signature(outcome)
            for outcome in SerialExecutor().run(_jobs(4))
        ]
        _install(FaultPlan(rules=(FaultRule(action="kill", times=1),)),
                 tmp_path, monkeypatch)
        outcomes = ProcessExecutor(n_jobs=2).run(jobs)
        assert len(outcomes) == 4 and all(outcome.ok for outcome in outcomes)
        # A dead worker is a pool failure, not a job failure: re-dispatch
        # consumes max_pool_rebuilds, never the jobs' attempt budget.
        assert all(outcome.attempts == 1 for outcome in outcomes)
        # Recovery is invisible in the results.
        assert [_result_signature(outcome) for outcome in outcomes] == clean

    def test_transient_worker_failure_retries_in_place(self, tmp_path,
                                                       monkeypatch):
        _install(FaultPlan(rules=(FaultRule(action="transient", times=1),)),
                 tmp_path, monkeypatch)
        executor = ProcessExecutor(n_jobs=2, retry_policy=RetryPolicy(
            max_attempts=2, **FAST))
        outcomes = executor.run(_jobs(4))
        assert all(outcome.ok for outcome in outcomes)
        # Exactly one execution claimed the injected fault and re-ran.
        assert sum(outcome.attempts for outcome in outcomes) == 5

    def test_wedged_worker_is_abandoned_and_job_retried(self, tmp_path,
                                                        monkeypatch):
        _install(FaultPlan(rules=(FaultRule(action="delay", delay_s=2.0,
                                            times=1),)),
                 tmp_path, monkeypatch)
        executor = ProcessExecutor(n_jobs=2, retry_policy=RetryPolicy(
            max_attempts=2, job_timeout_s=0.5, **FAST))
        outcomes = executor.run(_jobs(2))
        assert all(outcome.ok for outcome in outcomes)
        assert any(outcome.attempts == 2 for outcome in outcomes)
        assert not any(outcome.timed_out for outcome in outcomes)

    def test_wedged_worker_times_out_without_budget(self, tmp_path,
                                                    monkeypatch):
        _install(FaultPlan(rules=(FaultRule(action="delay", delay_s=2.0,
                                            times=1),)),
                 tmp_path, monkeypatch)
        executor = ProcessExecutor(n_jobs=2,
                                   retry_policy=RetryPolicy(job_timeout_s=0.5))
        outcomes = executor.run(_jobs(2))
        timed_out = [outcome for outcome in outcomes if outcome.timed_out]
        assert len(timed_out) >= 1
        assert all("timed out" in outcome.error for outcome in timed_out)
        assert all(outcome.ok for outcome in outcomes
                   if not outcome.timed_out)

    def test_repeated_pool_failure_degrades_to_serial(self, tmp_path,
                                                      monkeypatch, caplog):
        _install(FaultPlan(rules=(FaultRule(action="kill", times=1),)),
                 tmp_path, monkeypatch)
        executor = ProcessExecutor(n_jobs=2, max_pool_rebuilds=0)
        with caplog.at_level(logging.WARNING, logger="repro.runtime.executor"):
            outcomes = executor.run(_jobs(4))
        assert len(outcomes) == 4 and all(outcome.ok for outcome in outcomes)
        assert "degrading to serial execution" in caplog.text

    def test_executor_validation(self):
        with pytest.raises(ConfigurationError, match="RetryPolicy"):
            ProcessExecutor(retry_policy=0.5)
        with pytest.raises(ConfigurationError, match="max_pool_rebuilds"):
            ProcessExecutor(max_pool_rebuilds=-1)


# --------------------------------------------------------------- checkpoints


class TestCampaignCheckpoint:
    def _journal(self, tmp_path) -> Path:
        return tmp_path / "store.sqlite.checkpoint.jsonl"

    def test_flush_interval_must_be_positive(self, tmp_path):
        with pytest.raises(ConfigurationError, match="flush_interval"):
            CampaignCheckpoint(self._journal(tmp_path), flush_interval=0)

    def test_round_trip_restores_identical_results(self, tmp_path):
        journal = self._journal(tmp_path)
        first = SerialExecutor().run(
            _jobs(3), checkpoint=CampaignCheckpoint(journal))
        assert journal.exists()

        resumed_checkpoint = CampaignCheckpoint(journal)
        assert len(resumed_checkpoint) == 3
        resumed = SerialExecutor().run(_jobs(3),
                                       checkpoint=resumed_checkpoint)
        assert resumed_checkpoint.restored == 3
        # Restored outcomes carry the journaled results, not re-executions.
        assert all(outcome.duration_s == 0.0 for outcome in resumed)
        assert ([_result_signature(outcome) for outcome in resumed]
                == [_result_signature(outcome) for outcome in first])

    def test_relabeled_jobs_reuse_the_journal(self, tmp_path):
        journal = self._journal(tmp_path)
        SerialExecutor().run(_jobs(2, label="dot"),
                             checkpoint=CampaignCheckpoint(journal))
        checkpoint = CampaignCheckpoint(journal)
        SerialExecutor().run(_jobs(2, label="renamed"), checkpoint=checkpoint)
        assert checkpoint.restored == 2

    def test_failed_outcomes_are_never_journaled(self, tmp_path):
        journal = self._journal(tmp_path)
        job = _job(agent=AgentSpec.from_factory(_crashing_factory))
        [outcome] = SerialExecutor().run([job],
                                         checkpoint=CampaignCheckpoint(journal))
        assert not outcome.ok
        assert not journal.exists()  # the failed job must re-run on resume

    def test_buffering_respects_flush_interval(self, tmp_path):
        journal = self._journal(tmp_path)
        checkpoint = CampaignCheckpoint(journal, flush_interval=2)
        [outcome] = SerialExecutor().run([_job(seed=0)])
        checkpoint.record(outcome)
        assert not journal.exists()  # one entry buffered, interval is 2
        [other] = SerialExecutor().run([_job(seed=1)])
        checkpoint.record(other)
        assert journal.exists()
        assert len(CampaignCheckpoint(journal)) == 2

    def test_corrupt_journal_lines_fall_back_to_reevaluation(self, tmp_path):
        journal = self._journal(tmp_path)
        SerialExecutor().run(_jobs(2), checkpoint=CampaignCheckpoint(journal))
        valid_lines = journal.read_text(encoding="utf-8").splitlines()
        journal.write_text(
            "\n".join(valid_lines
                      + ["not json at all",
                         json.dumps({"v": 99, "job": "aa", "result": "bb"}),
                         valid_lines[0][: len(valid_lines[0]) // 2]])
            + "\n",
            encoding="utf-8",
        )
        # Only the intact, current-version lines survive the reload.
        assert len(CampaignCheckpoint(journal)) == 2

    def test_corrupt_payload_drops_entry_and_reruns(self, tmp_path):
        journal = self._journal(tmp_path)
        SerialExecutor().run([_job()], checkpoint=CampaignCheckpoint(journal))
        entry = json.loads(journal.read_text(encoding="utf-8"))
        entry["result"] = base64.b64encode(b"junk, not a pickle").decode("ascii")
        journal.write_text(json.dumps(entry) + "\n", encoding="utf-8")

        checkpoint = CampaignCheckpoint(journal)
        assert len(checkpoint) == 1
        assert checkpoint.result_for(_job()) is None  # falls back, never lies
        assert len(checkpoint) == 0 and checkpoint.restored == 0

    def test_clear_discards_the_journal(self, tmp_path):
        journal = self._journal(tmp_path)
        checkpoint = CampaignCheckpoint(journal)
        SerialExecutor().run([_job()], checkpoint=checkpoint)
        assert journal.exists()
        checkpoint.clear()
        assert not journal.exists() and len(checkpoint) == 0

    def test_process_executor_restores_from_journal(self, tmp_path):
        journal = self._journal(tmp_path)
        SerialExecutor().run(_jobs(4), checkpoint=CampaignCheckpoint(journal))
        checkpoint = CampaignCheckpoint(journal)
        outcomes = ProcessExecutor(n_jobs=2).run(_jobs(4),
                                                 checkpoint=checkpoint)
        assert checkpoint.restored == 4
        assert all(outcome.ok for outcome in outcomes)


class TestRuntimeSpecResilience:
    def test_checkpoint_knobs_require_a_store(self):
        with pytest.raises(ConfigurationError, match="store_path"):
            RuntimeSpec(resume=True)
        with pytest.raises(ConfigurationError, match="store_path"):
            RuntimeSpec(checkpoint_interval=2)

    def test_checkpoint_path_sits_next_to_the_store(self, tmp_path):
        store_path = str(tmp_path / "evals.sqlite")
        runtime = RuntimeSpec(store_path=store_path, checkpoint_interval=1)
        assert runtime.checkpoint_path == store_path + ".checkpoint.jsonl"
        assert RuntimeSpec(store_path=store_path).checkpoint_path is None

    def test_retry_policy_reflects_the_spec(self):
        policy = RuntimeSpec(retries=3, job_timeout_s=4.5).retry_policy()
        assert policy.max_attempts == 3 and policy.job_timeout_s == 4.5

    def test_fresh_runs_clear_stale_journals_resume_keeps_them(self, tmp_path):
        store_path = str(tmp_path / "evals.sqlite")
        runtime = RuntimeSpec(store_path=store_path, checkpoint_interval=1)
        SerialExecutor().run(_jobs(2), store=EvaluationStore(path=store_path),
                             checkpoint=runtime.build_checkpoint())
        resumed = dataclasses.replace(runtime, resume=True).build_checkpoint()
        assert len(resumed) == 2
        fresh = runtime.build_checkpoint()  # resume=False: explicit fresh run
        assert len(fresh) == 0


# ------------------------------------------------------ interrupted campaigns


class TestKeyboardInterrupt:
    def test_interrupt_flushes_completed_work_before_reraising(self, tmp_path):
        store_path = tmp_path / "evals.sqlite"
        journal = tmp_path / "evals.sqlite.checkpoint.jsonl"
        store = EvaluationStore(path=str(store_path))
        seen = []

        def interrupt_after_two(outcome):
            seen.append(outcome)
            if len(seen) == 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            ProcessExecutor(n_jobs=2).run(
                _jobs(6), store=store,
                on_outcome=interrupt_after_two,
                checkpoint=CampaignCheckpoint(journal))
        # Ctrl-C lost the wave in flight, not the campaign: the journal
        # and the persisted store both hold the completed jobs.
        assert len(CampaignCheckpoint(journal)) >= 2
        assert len(EvaluationStore(path=str(store_path))) > 0


#: Driver for kill-and-resume tests: runs a tiny campaign through
#: ``run_experiment`` and writes the report's canonical (timing-free) JSON.
#: Executed as a subprocess so an injected ``kill`` fault can take the whole
#: campaign down, exactly like a crashed host.
_RESUME_DRIVER = textwrap.dedent("""
    import sys

    from repro.experiments import ExperimentSpec, run_experiment

    mode, store, out = sys.argv[1], sys.argv[2], sys.argv[3]
    spec = ExperimentSpec.from_dict({
        "kind": "campaign",
        "benchmarks": ["dotproduct:length=12"],
        "agents": ["random"],
        "seeds": [0, 1, 2, 3],
        "max_steps": 10,
        "runtime": {
            "executor": "serial",
            "batch_size": 1,  # one job per seed: kill mid-campaign
            "store_path": store,
            "checkpoint_interval": 1,
            "resume": mode == "resume",
        },
    })
    report = run_experiment(spec)
    with open(out, "w", encoding="utf-8") as handle:
        handle.write(report.canonical_json())
""")


class TestKillAndResume:
    """The PR's acceptance criterion, in-tree: kill, resume, compare bytes."""

    def _run_driver(self, tmp_path, mode, store, out, extra_env=None):
        env = dict(os.environ)
        env.pop(FAULT_PLAN_ENV, None)
        env["PYTHONPATH"] = (str(REPO_ROOT / "src") + os.pathsep
                             + env.get("PYTHONPATH", ""))
        env.update(extra_env or {})
        driver = tmp_path / "driver.py"
        driver.write_text(_RESUME_DRIVER, encoding="utf-8")
        return subprocess.run(
            [sys.executable, str(driver), mode, str(store), str(out)],
            env=env, capture_output=True, text=True, timeout=120)

    def test_killed_campaign_resumes_bit_identical(self, tmp_path):
        store = tmp_path / "evals.sqlite"
        journal = tmp_path / "evals.sqlite.checkpoint.jsonl"
        out = tmp_path / "report.json"

        # Kill the campaign on its 3rd job, like a crashed host would.
        fault_env = FaultPlan(rules=(
            FaultRule(action="kill", after=2, times=1, exit_code=23),
        )).install(tmp_path / "faults")
        killed = self._run_driver(tmp_path, "fresh", store, out,
                                  extra_env=fault_env)
        assert killed.returncode == 23, killed.stderr
        assert not out.exists()
        journaled = len(CampaignCheckpoint(journal))
        assert journaled == 2  # the two finished jobs survived the kill

        # Resume: only the unfinished tail re-executes.
        resumed = self._run_driver(tmp_path, "resume", store, out)
        assert resumed.returncode == 0, resumed.stderr
        assert len(CampaignCheckpoint(journal)) == 4

        # An uninterrupted fresh run, for the byte comparison.
        reference_out = tmp_path / "reference.json"
        reference = self._run_driver(tmp_path, "fresh",
                                     tmp_path / "reference.sqlite",
                                     reference_out)
        assert reference.returncode == 0, reference.stderr
        assert out.read_bytes() == reference_out.read_bytes()
