"""Batched vectorized exploration: bit-identity and the batching policy.

The load-bearing contract of :mod:`repro.dse.batched_env` is that stepping
many episodes in lockstep is an implementation detail: every per-seed
:class:`~repro.dse.results.ExplorationResult` coming out of a batched job
must equal — field for field, float for float — the result of running the
corresponding serial :class:`~repro.runtime.jobs.ExplorationJob`.  These
tests pin that contract for every registered RL agent on every registered
benchmark, for mid-batch termination, and for the RNG stream shortcuts the
vectorized agents rely on; the rest covers the batching policy of
``expand_jobs`` and the campaign/spec/CLI wire-through.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchmarks.registry import available, create
from repro.cli import main
from repro.dse import Campaign, Evaluator
from repro.dse.thresholds import ExplorationThresholds
from repro.errors import ConfigurationError
from repro.experiments.spec import RuntimeSpec
from repro.runtime import (
    AgentSpec,
    BatchedExplorationJob,
    EvaluationStore,
    ExplorationJob,
    ProcessExecutor,
    execute_job,
    expand_jobs,
    flatten_outcomes,
)

#: Small instances of every registered benchmark — large enough to have a
#: non-trivial design space, small enough to keep kernel runs cheap.
SMALL_BENCHMARKS = {
    "matmul": {"rows": 3, "inner": 3, "cols": 3},
    "fir": {"num_samples": 12, "num_taps": 4},
    "conv2d": {"height": 6, "width": 6},
    "dct": {"block_size": 4, "num_blocks": 1},
    "sobel": {"height": 6, "width": 6},
    "dotproduct": {"length": 8},
    "kmeans": {"num_points": 8, "num_centroids": 2},
}

SEEDS = (0, 3)


def _serial_result(benchmark, seed, agent="q-learning", steps=50, env_kwargs=None):
    job = ExplorationJob(
        benchmark_label="bench", benchmark=benchmark, seed=seed,
        agent=AgentSpec(agent), max_steps=steps, env_kwargs=env_kwargs or {},
    )
    return execute_job(job, store=EvaluationStore())


def _batched_results(benchmark, seeds, agent="q-learning", steps=50, env_kwargs=None):
    job = BatchedExplorationJob(
        benchmark_label="bench", benchmark=benchmark, seeds=seeds,
        agent=AgentSpec(agent), max_steps=steps, env_kwargs=env_kwargs or {},
    )
    return execute_job(job, store=EvaluationStore())


# ----------------------------------------------------------- bit-identity


class TestBitIdentity:
    def test_registry_covers_every_benchmark(self):
        # If a new benchmark is registered, it must join the identity matrix.
        assert set(SMALL_BENCHMARKS) == set(available())

    @pytest.mark.parametrize("name", sorted(SMALL_BENCHMARKS))
    def test_batched_equals_serial_per_benchmark(self, name):
        benchmark = create(name, **SMALL_BENCHMARKS[name])
        batched = _batched_results(benchmark, SEEDS)
        assert len(batched) == len(SEEDS)
        for seed, result in zip(SEEDS, batched):
            assert result == _serial_result(benchmark, seed)

    @pytest.mark.parametrize("agent", ["q-learning", "sarsa", "random"])
    @pytest.mark.parametrize("scheme", ["directional", "compact"])
    def test_batched_equals_serial_per_agent_and_scheme(self, agent, scheme):
        benchmark = create("dotproduct", length=8)
        env_kwargs = {"action_scheme": scheme}
        batched = _batched_results(benchmark, SEEDS, agent=agent,
                                   env_kwargs=env_kwargs)
        for seed, result in zip(SEEDS, batched):
            assert result == _serial_result(benchmark, seed, agent=agent,
                                            env_kwargs=env_kwargs)

    def test_mid_batch_termination_keeps_survivors_identical(self):
        # With these thresholds seed 1 hits the cumulative-reward ceiling
        # mid-batch while the other episodes run out their full budget —
        # the survivors must keep stepping exactly as they would serially.
        benchmark = create("dotproduct", length=8)
        env_kwargs = {
            "thresholds": ExplorationThresholds(
                accuracy=2.0, power_mw=0.0, time_ns=0.0
            ),
            "max_cumulative_reward": 20.0,
        }
        seeds = (0, 1, 2, 3)
        batched = _batched_results(benchmark, seeds, steps=120,
                                   env_kwargs=env_kwargs)
        assert any(result.terminated for result in batched)
        assert not all(result.terminated for result in batched)
        lengths = {result.num_steps for result in batched}
        assert len(lengths) > 1, "expected episodes to stop at different steps"
        for seed, result in zip(seeds, batched):
            assert result == _serial_result(benchmark, seed, steps=120,
                                            env_kwargs=env_kwargs)

    def test_random_start_matches_serial(self):
        benchmark = create("dotproduct", length=8)
        job = BatchedExplorationJob(
            benchmark_label="bench", benchmark=benchmark, seeds=SEEDS,
            agent=AgentSpec("q-learning"), max_steps=40, random_start=True,
        )
        batched = execute_job(job, store=EvaluationStore())
        for seed, result in zip(SEEDS, batched):
            serial = ExplorationJob(
                benchmark_label="bench", benchmark=benchmark, seed=seed,
                agent=AgentSpec("q-learning"), max_steps=40, random_start=True,
            )
            assert result == execute_job(serial, store=EvaluationStore())


# ---------------------------------------------------- RNG stream shortcuts


class TestStreamShortcuts:
    def test_singleton_choice_is_stream_neutral(self):
        # The vectorized agents skip ``rng.choice`` for unique argmaxes;
        # that is only sound because a one-element choice never advances
        # the bit generator.
        for seed in range(20):
            a = np.random.default_rng(seed)
            b = np.random.default_rng(seed)
            assert int(a.choice(np.array([7]))) == 7
            assert a.random() == b.random()

    def test_choice_draws_exactly_integers(self):
        # The vectorized tie-break replaces ``rng.choice(best)`` with
        # ``best[rng.integers(0, len(best))]`` — same value, same stream.
        for n in (2, 3, 5, 8):
            for seed in range(20):
                a = np.random.default_rng(seed)
                b = np.random.default_rng(seed)
                candidates = np.arange(100, 100 + n)
                assert int(a.choice(candidates)) == \
                    int(candidates[int(b.integers(0, n))])
                assert a.random() == b.random()


# ------------------------------------------------- design-point equivalence


class TestEquivalenceSharing:
    def test_sharing_is_bit_identical_and_saves_kernel_runs(self, monkeypatch):
        benchmark = create("dotproduct", length=8)
        calls = {"n": 0}
        original = type(benchmark).execute

        def counting(self, *args, **kwargs):
            calls["n"] += 1
            return original(self, *args, **kwargs)

        monkeypatch.setattr(type(benchmark), "execute", counting)

        shared = Evaluator(benchmark, seed=0, store=EvaluationStore(),
                           share_equivalent=True)
        points = [shared.design_space.point_at(i) for i in range(40)]
        calls["n"] = 0
        shared_records = shared.evaluate_many(points)
        shared_runs = calls["n"]

        unshared = Evaluator(benchmark, seed=0, store=EvaluationStore(),
                             share_equivalent=False)
        calls["n"] = 0
        unshared_records = unshared.evaluate_many(points)
        unshared_runs = calls["n"]

        assert shared_runs < unshared_runs
        for left, right in zip(shared_records, unshared_records):
            assert left.point == right.point
            assert left.deltas == right.deltas
            assert left.approx_cost == right.approx_cost


# --------------------------------------------------------- batching policy


class TestExpandJobsBatching:
    def _benchmarks(self):
        return {"dot": create("dotproduct", length=8)}

    def test_default_stays_per_seed(self):
        jobs = expand_jobs(self._benchmarks(), AgentSpec("q-learning"),
                           seeds=(0, 1, 2))
        assert all(isinstance(job, ExplorationJob) for job in jobs)

    def test_auto_batches_all_seeds_into_one_job(self):
        jobs = expand_jobs(self._benchmarks(), AgentSpec("q-learning"),
                           seeds=(0, 1, 2, 3), batch_size=0)
        assert len(jobs) == 1
        assert isinstance(jobs[0], BatchedExplorationJob)
        assert jobs[0].seeds == (0, 1, 2, 3)

    def test_explicit_batch_size_chunks_consecutively(self):
        jobs = expand_jobs(self._benchmarks(), AgentSpec("q-learning"),
                           seeds=(0, 1, 2, 3, 4), batch_size=2)
        seed_groups = [
            job.seeds if isinstance(job, BatchedExplorationJob) else (job.seed,)
            for job in jobs
        ]
        assert seed_groups == [(0, 1), (2, 3), (4,)]
        # A single-seed remainder chunk degenerates to a plain serial job.
        assert isinstance(jobs[-1], ExplorationJob)
        assert all(isinstance(job, BatchedExplorationJob) for job in jobs[:-1])

    def test_batch_size_one_disables_batching(self):
        jobs = expand_jobs(self._benchmarks(), AgentSpec("q-learning"),
                           seeds=(0, 1, 2), batch_size=1)
        assert all(isinstance(job, ExplorationJob) for job in jobs)

    def test_baseline_agents_never_batch(self):
        jobs = expand_jobs(self._benchmarks(), AgentSpec("hill-climbing"),
                           seeds=(0, 1, 2), batch_size=0)
        assert all(isinstance(job, ExplorationJob) for job in jobs)

    def test_custom_factories_never_batch(self):
        spec = AgentSpec.from_factory(_module_level_factory)
        jobs = expand_jobs(self._benchmarks(), spec, seeds=(0, 1), batch_size=0)
        assert all(isinstance(job, ExplorationJob) for job in jobs)

    def test_negative_batch_size_rejected(self):
        with pytest.raises(ConfigurationError):
            expand_jobs(self._benchmarks(), AgentSpec("q-learning"),
                        seeds=(0, 1), batch_size=-1)

    def test_batched_job_rejects_non_batchable_agent(self):
        with pytest.raises(ConfigurationError):
            BatchedExplorationJob(
                benchmark_label="dot", benchmark=create("dotproduct", length=8),
                seeds=(0, 1), agent=AgentSpec("hill-climbing"),
            )

    def test_batched_job_rejects_on_step_callbacks(self):
        job = BatchedExplorationJob(
            benchmark_label="dot", benchmark=create("dotproduct", length=8),
            seeds=(0, 1), agent=AgentSpec("q-learning"), max_steps=10,
        )
        with pytest.raises(ConfigurationError, match="batch_size=1"):
            execute_job(job, on_step=lambda record: None)


def _module_level_factory(environment, seed):
    from repro.agents import QLearningAgent

    return QLearningAgent(num_actions=environment.action_space.n, seed=seed)


# ------------------------------------------------------ campaign/executors


class TestCampaignBatching:
    def _campaign(self, **kwargs):
        return Campaign(
            benchmarks={"dot": create("dotproduct", length=8)},
            agent_factory=AgentSpec("q-learning"),
            max_steps=40,
            seeds=(0, 1, 2, 3),
            store=EvaluationStore(),
            **kwargs,
        )

    def test_auto_batching_spreads_seeds_over_workers(self):
        serial_jobs = self._campaign().jobs()
        assert [job.seeds for job in serial_jobs] == [(0, 1, 2, 3)]
        process_jobs = self._campaign(
            executor=ProcessExecutor(n_jobs=2)
        ).jobs()
        assert [job.seeds for job in process_jobs] == [(0, 1), (2, 3)]

    def test_batched_campaign_matches_per_seed_campaign(self):
        reference = self._campaign(batch_size=1).run()
        batched = self._campaign(batch_size=4).run()
        assert [(e.benchmark_label, e.seed) for e in batched] == \
            [(e.benchmark_label, e.seed) for e in reference]
        for left, right in zip(reference, batched):
            assert left.result == right.result

    def test_process_executor_runs_batched_jobs_and_merges_store(self):
        store = EvaluationStore()
        campaign = Campaign(
            benchmarks={"dot": create("dotproduct", length=8)},
            agent_factory=AgentSpec("q-learning"),
            max_steps=40,
            seeds=(0, 1, 2, 3),
            store=store,
            executor=ProcessExecutor(n_jobs=2),
            batch_size=2,
        )
        entries = campaign.run()
        reference = self._campaign(batch_size=1).run()
        for left, right in zip(reference, entries):
            assert left.result == right.result
        assert len(store) > 0  # batched workers merged evaluations back

    def test_flatten_outcomes_splits_batched_outcomes(self):
        campaign = self._campaign(batch_size=4)
        outcomes = campaign.run_outcomes()
        assert len(outcomes) == 1  # one batched job ran ...
        flat = flatten_outcomes(outcomes)
        assert [outcome.job.seed for outcome in flat] == [0, 1, 2, 3]
        assert all(outcome.ok for outcome in flat)
        shares = [outcome.duration_s for outcome in flat]
        assert shares == pytest.approx([outcomes[0].duration_s / 4] * 4)

    def test_negative_batch_size_rejected(self):
        from repro.errors import ExplorationError

        with pytest.raises(ExplorationError):
            self._campaign(batch_size=-2)


# ------------------------------------------------------------ spec and CLI


class TestRuntimeSpecBatching:
    def test_round_trip_preserves_batch_size(self):
        spec = RuntimeSpec(batch_size=8)
        assert RuntimeSpec.from_dict(spec.to_dict()).batch_size == 8

    def test_validation_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            RuntimeSpec(batch_size=-1)
        with pytest.raises(ConfigurationError):
            RuntimeSpec(batch_size="many")

    def test_effective_batch_size_policy(self):
        assert RuntimeSpec(batch_size=16).effective_batch_size(4) == 16
        assert RuntimeSpec().effective_batch_size(1) == 1
        assert RuntimeSpec(executor="process", jobs=2).effective_batch_size(8) == 4
        assert RuntimeSpec().effective_batch_size(6) == 6

    def test_from_jobs_forwards_batch_size(self):
        assert RuntimeSpec.from_jobs(1, batch_size=4).batch_size == 4
        assert RuntimeSpec.from_jobs(2, batch_size=4).batch_size == 4


class TestCliBatching:
    def test_campaign_reports_batched_execution(self, capsys):
        assert main(["campaign", "--benchmarks", "dotproduct:length=8",
                     "--seeds", "0", "1", "--steps", "25",
                     "--batch-size", "2"]) == 0
        assert "batched 2 seeds/job" in capsys.readouterr().out

    def test_campaign_batch_size_one_stays_serial(self, capsys):
        assert main(["campaign", "--benchmarks", "dotproduct:length=8",
                     "--seeds", "0", "1", "--steps", "25",
                     "--batch-size", "1"]) == 0
        assert "batched" not in capsys.readouterr().out
