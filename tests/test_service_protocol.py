"""Wire-protocol and record round-trip properties.

Two families of guarantees:

* **Byte stability** — encoding is a pure function of content.  Random
  frames, :class:`ExperimentSpec`\\ s, :class:`ExperimentReport`\\ s and
  store :class:`EvaluationRecord`\\ s survive encode→decode→encode with
  identical bytes, so fingerprints, canonical reports and store files
  mean the same thing on every side of the wire.
* **Malformed input hygiene** — garbage frames (bad JSON, non-objects,
  truncations, oversized lines, invalid UTF-8) raise one-line
  :class:`~repro.errors.ProtocolError`\\ s, and a live daemon answers
  them with one-line error frames and keeps serving — never a traceback,
  never a crash.
"""

from __future__ import annotations

import io
import json
import pickle
import socket

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse.design_space import DesignPoint
from repro.dse.evaluator import EvaluationRecord
from repro.errors import ProtocolError
from repro.experiments.report import ExperimentEntry, ExperimentReport
from repro.experiments.spec import ExperimentSpec
from repro.metrics import ObjectiveDeltas
from repro.operators.energy import RunCost
from repro.runtime.store import EvaluationKey, _decode_key, _encode_key
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
    read_frame,
)

from _service_utils import running_daemon, service_env

# --------------------------------------------------------------- strategies

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
)

json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=12), children, max_size=4),
    ),
    max_leaves=12,
)

frames = st.dictionaries(st.text(min_size=1, max_size=16), json_values,
                         min_size=1, max_size=6)

specs = st.builds(
    lambda kind, seeds, max_steps, description: ExperimentSpec(
        kind=kind,
        benchmarks=("dotproduct:length=12",),
        agents=() if kind == "sweep" else ("random",),
        seeds=tuple(seeds),
        max_steps=max_steps,
        description=description,
    ),
    kind=st.sampled_from(("explore", "campaign", "sweep")),
    seeds=st.integers(min_value=0, max_value=10**6).map(lambda seed: (seed,)),
    max_steps=st.integers(min_value=1, max_value=10**6),
    description=st.text(max_size=30),
)

design_points = st.builds(
    DesignPoint,
    adder_index=st.integers(min_value=1, max_value=6),
    multiplier_index=st.integers(min_value=1, max_value=6),
    variables=st.lists(st.booleans(), min_size=1, max_size=8).map(tuple),
)

records = st.builds(
    EvaluationRecord,
    point=design_points,
    deltas=st.builds(
        ObjectiveDeltas,
        accuracy=st.floats(min_value=0, max_value=1e9, allow_nan=False),
        power_mw=st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
        time_ns=st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
    ),
    approx_cost=st.builds(
        RunCost,
        power_mw=st.floats(min_value=0, max_value=1e9, allow_nan=False),
        time_ns=st.floats(min_value=0, max_value=1e9, allow_nan=False),
        operation_count=st.integers(min_value=0, max_value=10**9),
    ),
)

store_keys = st.builds(
    EvaluationKey,
    benchmark=st.text(
        alphabet=st.characters(codec="ascii", exclude_characters="|:\n"),
        min_size=1, max_size=16),
    catalog=st.text(
        alphabet=st.characters(codec="ascii", exclude_characters="|:\n"),
        min_size=1, max_size=16),
    seed=st.integers(min_value=0, max_value=10**9),
    signed=st.booleans(),
    point=st.tuples(st.integers(min_value=1, max_value=9),
                    st.integers(min_value=1, max_value=9),
                    st.lists(st.booleans(), min_size=1, max_size=8).map(tuple)),
)


# ------------------------------------------------------------ byte stability


class TestFrameRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(payload=frames)
    def test_encode_decode_encode_is_byte_stable(self, payload):
        wire = encode_frame(payload)
        assert decode_frame(wire) == payload
        assert encode_frame(decode_frame(wire)) == wire

    @settings(max_examples=100, deadline=None)
    @given(payload=frames)
    def test_read_frame_inverts_encode_frame(self, payload):
        stream = io.BytesIO(encode_frame(payload) + encode_frame(payload))
        assert read_frame(stream) == payload
        assert read_frame(stream) == payload
        assert read_frame(stream) is None  # clean end of stream

    @settings(max_examples=50, deadline=None)
    @given(payload=frames)
    def test_frames_are_single_lines(self, payload):
        wire = encode_frame(payload)
        assert wire.endswith(b"\n")
        assert wire.count(b"\n") == 1


class TestSpecRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(spec=specs)
    def test_spec_survives_the_wire_byte_stably(self, spec):
        wire = encode_frame({"op": "submit", "spec": spec.to_dict()})
        decoded = decode_frame(wire)
        rebuilt = ExperimentSpec.from_dict(decoded["spec"])
        assert rebuilt == spec
        assert rebuilt.fingerprint() == spec.fingerprint()
        assert encode_frame({"op": "submit", "spec": rebuilt.to_dict()}) == wire


class TestReportRoundTrip:
    def _report(self, spec, metrics_list):
        entries = tuple(
            ExperimentEntry(benchmark_label="dotproduct:length=12", seed=index,
                            agent=None, ok=True, metrics=metrics)
            for index, metrics in enumerate(metrics_list)
        )
        return ExperimentReport(spec=spec, entries=entries, wall_clock_s=0.5,
                                store={"size": len(entries)},
                                provenance={"fingerprint": spec.fingerprint()})

    @settings(max_examples=50, deadline=None)
    @given(spec=specs,
           metrics_list=st.lists(
               st.dictionaries(st.text(min_size=1, max_size=10), json_values,
                               max_size=3),
               min_size=1, max_size=3))
    def test_report_documents_are_byte_stable(self, spec, metrics_list):
        report = self._report(spec, metrics_list)
        for text in (report.to_json(), report.canonical_json()):
            reparsed = json.dumps(json.loads(text), indent=2, sort_keys=True)
            assert reparsed == text

    @settings(max_examples=25, deadline=None)
    @given(spec=specs,
           metrics_list=st.lists(
               st.dictionaries(st.text(min_size=1, max_size=10), json_values,
                               max_size=3),
               min_size=1, max_size=2))
    def test_report_survives_a_frame_byte_stably(self, spec, metrics_list):
        report = self._report(spec, metrics_list)
        frame = {"report": report.to_dict(), "canonical": report.canonical_json()}
        wire = encode_frame(frame)
        assert encode_frame(decode_frame(wire)) == wire


class TestStoreRecordRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(key=store_keys)
    def test_key_text_encoding_is_byte_stable(self, key):
        text = _encode_key(key)
        assert _decode_key(text) == key
        assert _encode_key(_decode_key(text)) == text

    @settings(max_examples=100, deadline=None)
    @given(record=records)
    def test_record_pickle_is_byte_stable(self, record):
        # The store's sqlite backend persists records as pickles; a
        # load-and-rewrite cycle must not change a single byte.
        blob = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        restored = pickle.loads(blob)
        assert restored == record
        assert pickle.dumps(restored, protocol=pickle.HIGHEST_PROTOCOL) == blob


# ----------------------------------------------------- malformed input hygiene


MALFORMED_LINES = [
    b"not json at all\n",
    b"{\"unterminated\": \n",
    b"[1, 2, 3]\n",           # JSON, but not an object
    b"\"just a string\"\n",
    b"42\n",
    b"null\n",
    b"\n",                     # empty frame
    b"   \n",
    b"\xff\xfe garbage \xba\n",  # not UTF-8
]


class TestMalformedFrames:
    @pytest.mark.parametrize("line", MALFORMED_LINES,
                             ids=[repr(line) for line in MALFORMED_LINES])
    def test_malformed_lines_raise_one_line_protocol_errors(self, line):
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame(line)
        message = str(excinfo.value)
        assert message
        assert "\n" not in message
        assert "Traceback" not in message

    def test_truncated_stream_is_a_protocol_error(self):
        stream = io.BytesIO(b'{"ok": true')  # connection died mid-line
        with pytest.raises(ProtocolError, match="truncated"):
            read_frame(stream)

    def test_oversized_frame_is_refused_without_reading_it_all(self):
        stream = io.BytesIO(b"x" * (MAX_FRAME_BYTES + 10))
        with pytest.raises(ProtocolError, match="limit"):
            read_frame(stream)

    def test_unserializable_payload_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="not JSON-serializable"):
            encode_frame({"spec": object()})
        with pytest.raises(ProtocolError, match="not JSON-serializable"):
            encode_frame({"bad": float("nan")})

    def test_non_mapping_payload_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="must be a mapping"):
            encode_frame(["a", "list"])


class TestDaemonFrameHygiene:
    """A live daemon answers garbage with error frames and keeps serving."""

    def _raw_exchange(self, address, raw_line):
        host, port_text = address.rsplit(":", 1)
        with socket.create_connection((host, int(port_text)), timeout=30) as sock:
            stream = sock.makefile("rwb")
            stream.write(raw_line)
            stream.flush()
            sock.shutdown(socket.SHUT_WR)
            return stream.readline()

    def test_garbage_gets_an_error_frame_and_the_daemon_survives(self):
        with running_daemon("--port", "0") as (_daemon, address):
            for line in MALFORMED_LINES:
                answer = self._raw_exchange(address, line)
                frame = decode_frame(answer)
                assert frame["ok"] is False
                assert "\n" not in frame["error"]
                assert "Traceback" not in frame["error"]

            # Truncated frame: the writer vanishes mid-line.
            answer = self._raw_exchange(address, b'{"op": "stats"')
            assert decode_frame(answer)["ok"] is False

            # Unknown ops and missing fields answer, never kill.
            for request in ({"op": "frobnicate"}, {"op": "poll"},
                            {"op": "submit"}, {"op": "poll", "ticket": "nope"},
                            {"op": "submit", "spec": {"kind": "bogus"}}):
                answer = self._raw_exchange(address, encode_frame(request))
                frame = decode_frame(answer)
                assert frame["ok"] is False, request
                assert "\n" not in frame["error"]

            # After all that abuse the daemon still answers honest requests.
            answer = self._raw_exchange(address, encode_frame({"op": "stats"}))
            assert decode_frame(answer)["ok"] is True


def test_service_env_helper_points_at_src():
    assert "src" in service_env()["PYTHONPATH"]
