"""Tests for the design-point evaluator, thresholds and reward functions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dse import (
    Algorithm1Reward,
    DesignPoint,
    Evaluator,
    ExplorationThresholds,
    ScalarizedReward,
    derive_thresholds,
)
from repro.errors import ConfigurationError, DesignSpaceError
from repro.metrics import ObjectiveDeltas


class TestEvaluator:
    def test_precise_baseline_is_cached_and_consistent(self, matmul_evaluator):
        outputs = matmul_evaluator.precise_outputs
        expected = (matmul_evaluator.inputs["a"] @ matmul_evaluator.inputs["b"]).ravel()
        np.testing.assert_array_equal(outputs, expected)
        assert matmul_evaluator.precise_cost.power_mw > 0
        assert matmul_evaluator.precise_cost.time_ns > 0

    def test_width_restriction_matches_benchmark(self, matmul_evaluator):
        catalog = matmul_evaluator.catalog
        assert all(entry.width == 8 for entry in catalog.adders)
        assert all(entry.width == 8 for entry in catalog.multipliers)
        assert matmul_evaluator.full_catalog.num_adders == 12

    def test_unrestricted_evaluator_keeps_full_catalog(self, small_matmul):
        evaluator = Evaluator(small_matmul, restrict_to_benchmark_widths=False)
        assert evaluator.catalog.num_adders == 12

    def test_initial_point_has_zero_deltas(self, matmul_evaluator):
        initial = matmul_evaluator.design_space.initial_point()
        record = matmul_evaluator.evaluate(initial)
        assert record.deltas.accuracy == 0.0
        assert record.deltas.power_mw == 0.0
        assert record.deltas.time_ns == 0.0

    def test_exact_operators_with_all_variables_selected_are_lossless(self, matmul_evaluator):
        point = DesignPoint(1, 1, (True,) * matmul_evaluator.design_space.num_variables)
        record = matmul_evaluator.evaluate(point)
        assert record.deltas.accuracy == 0.0

    def test_aggressive_point_reduces_power_and_time(self, matmul_evaluator):
        space = matmul_evaluator.design_space
        record = matmul_evaluator.evaluate(space.most_aggressive_point())
        assert record.deltas.power_mw > 0
        assert record.deltas.time_ns > 0
        assert record.deltas.accuracy > 0

    def test_more_aggressive_multiplier_saves_more_power(self, matmul_evaluator):
        space = matmul_evaluator.design_space
        variables = (True,) * space.num_variables
        mild = matmul_evaluator.evaluate(DesignPoint(1, 2, variables))
        aggressive = matmul_evaluator.evaluate(DesignPoint(1, space.num_multipliers, variables))
        assert aggressive.deltas.power_mw > mild.deltas.power_mw

    def test_evaluation_is_cached(self, matmul_evaluator):
        point = matmul_evaluator.design_space.most_aggressive_point()
        first = matmul_evaluator.evaluate(point)
        before = matmul_evaluator.cache_size
        second = matmul_evaluator.evaluate(point)
        assert first is second
        assert matmul_evaluator.cache_size == before

    def test_clear_cache(self, matmul_evaluator):
        matmul_evaluator.evaluate(matmul_evaluator.design_space.initial_point())
        matmul_evaluator.clear_cache()
        assert matmul_evaluator.cache_size == 0

    def test_same_seed_same_workload(self, small_matmul):
        first = Evaluator(small_matmul, seed=3)
        second = Evaluator(small_matmul, seed=3)
        np.testing.assert_array_equal(first.inputs["a"], second.inputs["a"])
        third = Evaluator(small_matmul, seed=4)
        assert not np.array_equal(first.inputs["a"], third.inputs["a"])

    def test_invalid_point_raises(self, matmul_evaluator):
        with pytest.raises(DesignSpaceError):
            matmul_evaluator.evaluate(DesignPoint(99, 1, (False, False, False)))

    def test_power_delta_matches_manual_accounting(self, matmul_evaluator):
        # Approximating only the multiplications (variables a and b) with the
        # cheapest multiplier must save exactly ops * (precise - approx) power.
        space = matmul_evaluator.design_space
        catalog = matmul_evaluator.catalog
        point = DesignPoint(1, space.num_multipliers, (True, True, False))
        record = matmul_evaluator.evaluate(point)
        benchmark = matmul_evaluator.benchmark
        num_muls = benchmark.rows * benchmark.inner * benchmark.cols
        precise_mul = catalog.exact_multiplier(8).published.power_mw
        approx_mul = catalog.multiplier(space.num_multipliers).published.power_mw
        expected = num_muls * (precise_mul - approx_mul)
        assert record.deltas.power_mw == pytest.approx(expected, rel=1e-9)


class TestThresholds:
    def test_derived_as_in_the_paper(self, matmul_evaluator):
        thresholds = derive_thresholds(
            matmul_evaluator.precise_outputs,
            matmul_evaluator.precise_cost.power_mw,
            matmul_evaluator.precise_cost.time_ns,
        )
        assert thresholds.power_mw == pytest.approx(0.5 * matmul_evaluator.precise_cost.power_mw)
        assert thresholds.time_ns == pytest.approx(0.5 * matmul_evaluator.precise_cost.time_ns)
        expected_acc = 0.4 * float(np.mean(np.abs(matmul_evaluator.precise_outputs)))
        assert thresholds.accuracy == pytest.approx(expected_acc)

    def test_custom_fractions(self, matmul_evaluator):
        thresholds = derive_thresholds(
            matmul_evaluator.precise_outputs, 100.0, 200.0,
            accuracy_factor=0.1, power_fraction=0.25, time_fraction=0.75,
        )
        assert thresholds.power_mw == pytest.approx(25.0)
        assert thresholds.time_ns == pytest.approx(150.0)

    def test_predicates(self):
        thresholds = ExplorationThresholds(accuracy=10.0, power_mw=5.0, time_ns=5.0)
        good = ObjectiveDeltas(accuracy=2.0, power_mw=6.0, time_ns=7.0)
        weak = ObjectiveDeltas(accuracy=2.0, power_mw=1.0, time_ns=7.0)
        bad = ObjectiveDeltas(accuracy=20.0, power_mw=6.0, time_ns=7.0)
        assert thresholds.satisfied_by(good)
        assert thresholds.accuracy_ok(weak) and not thresholds.gains_ok(weak)
        assert not thresholds.accuracy_ok(bad)

    def test_negative_threshold_raises(self):
        with pytest.raises(ConfigurationError):
            ExplorationThresholds(accuracy=-1.0, power_mw=0.0, time_ns=0.0)

    def test_empty_outputs_raise(self):
        with pytest.raises(ConfigurationError):
            derive_thresholds(np.array([]), 1.0, 1.0)

    def test_negative_fraction_raises(self):
        with pytest.raises(ConfigurationError):
            derive_thresholds(np.array([1.0]), 1.0, 1.0, accuracy_factor=-0.1)


class TestAlgorithm1Reward:
    @pytest.fixture
    def space(self, matmul_evaluator):
        return matmul_evaluator.design_space

    @pytest.fixture
    def thresholds(self):
        return ExplorationThresholds(accuracy=10.0, power_mw=100.0, time_ns=100.0)

    @pytest.fixture
    def reward(self):
        return Algorithm1Reward(max_reward=50.0)

    def _point(self, space, aggressive=False):
        return space.most_aggressive_point() if aggressive else space.initial_point()

    def test_violation_gets_minus_max_reward(self, reward, space, thresholds):
        deltas = ObjectiveDeltas(accuracy=50.0, power_mw=500.0, time_ns=500.0)
        outcome = reward(self._point(space), deltas, thresholds, space)
        assert outcome.reward == -50.0
        assert outcome.constraint_violated
        assert not outcome.terminate

    def test_good_gains_get_positive_reward(self, reward, space, thresholds):
        deltas = ObjectiveDeltas(accuracy=5.0, power_mw=200.0, time_ns=200.0)
        outcome = reward(self._point(space), deltas, thresholds, space)
        assert outcome.reward == 1.0

    def test_insufficient_gains_get_negative_reward(self, reward, space, thresholds):
        deltas = ObjectiveDeltas(accuracy=5.0, power_mw=10.0, time_ns=200.0)
        outcome = reward(self._point(space), deltas, thresholds, space)
        assert outcome.reward == -1.0

    def test_most_aggressive_feasible_point_terminates(self, reward, space, thresholds):
        deltas = ObjectiveDeltas(accuracy=5.0, power_mw=0.0, time_ns=0.0)
        outcome = reward(self._point(space, aggressive=True), deltas, thresholds, space)
        assert outcome.reward == 50.0
        assert outcome.terminate

    def test_invalid_configuration_raises(self):
        with pytest.raises(ConfigurationError):
            Algorithm1Reward(max_reward=0)
        with pytest.raises(ConfigurationError):
            Algorithm1Reward(positive_reward=-1)
        with pytest.raises(ConfigurationError):
            Algorithm1Reward(negative_reward=1)


class TestScalarizedReward:
    def test_dense_reward_increases_with_gains(self, matmul_evaluator):
        space = matmul_evaluator.design_space
        thresholds = ExplorationThresholds(accuracy=10.0, power_mw=10.0, time_ns=10.0)
        reward = ScalarizedReward()
        small = reward(space.initial_point(),
                       ObjectiveDeltas(accuracy=0.0, power_mw=5.0, time_ns=5.0),
                       thresholds, space)
        large = reward(space.initial_point(),
                       ObjectiveDeltas(accuracy=0.0, power_mw=20.0, time_ns=20.0),
                       thresholds, space)
        assert large.reward > small.reward

    def test_violation_is_negative(self, matmul_evaluator):
        space = matmul_evaluator.design_space
        thresholds = ExplorationThresholds(accuracy=10.0, power_mw=10.0, time_ns=10.0)
        outcome = ScalarizedReward()(
            space.initial_point(),
            ObjectiveDeltas(accuracy=100.0, power_mw=50.0, time_ns=50.0),
            thresholds, space,
        )
        assert outcome.reward < 0
        assert outcome.constraint_violated

    def test_negative_weight_raises(self):
        with pytest.raises(ConfigurationError):
            ScalarizedReward(weight_power=-1.0)
