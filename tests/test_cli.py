"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_explore_defaults(self):
        args = build_parser().parse_args(["explore"])
        assert args.benchmark == "matmul"
        assert args.steps == 2000
        assert args.agent == "q-learning"

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explore", "--benchmark", "nothing"])


class TestCommands:
    def test_list_benchmarks(self, capsys):
        assert main(["list-benchmarks"]) == 0
        output = capsys.readouterr().out
        assert "matmul" in output
        assert "fir" in output

    def test_characterize_without_measurement(self, capsys):
        assert main(["characterize", "--no-measure"]) == 0
        output = capsys.readouterr().out
        assert "Table I" in output
        assert "add8_00M" in output
        assert "mul32_043" in output

    def test_explore_prints_table3_row(self, capsys):
        assert main(["explore", "--benchmark", "dotproduct", "--steps", "40", "--figures"]) == 0
        output = capsys.readouterr().out
        assert "Δpower sol" in output
        assert "Trend lines" in output
        assert "Average reward" in output

    def test_explore_with_random_agent(self, capsys):
        assert main(["explore", "--benchmark", "dotproduct", "--steps", "20",
                     "--agent", "random"]) == 0
        assert "Exploration of" in capsys.readouterr().out

    def test_compare_runs_all_explorers(self, capsys):
        assert main(["compare", "--benchmark", "dotproduct", "--steps", "30"]) == 0
        output = capsys.readouterr().out
        assert "q-learning" in output
        assert "simulated-annealing" in output
        assert "genetic" in output
