"""Tests for the command-line interface."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_explore_defaults(self):
        args = build_parser().parse_args(["explore"])
        assert args.benchmark == "matmul"
        assert args.steps == 2000
        assert args.agent == "q-learning"

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explore", "--benchmark", "nothing"])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.benchmarks == ["dotproduct"]
        assert args.jobs == 1
        assert args.chunk_size == 256
        assert args.store is None and args.out is None


class TestCommands:
    def test_list_benchmarks(self, capsys):
        assert main(["list-benchmarks"]) == 0
        output = capsys.readouterr().out
        assert "matmul" in output
        assert "fir" in output

    def test_characterize_without_measurement(self, capsys):
        assert main(["characterize", "--no-measure"]) == 0
        output = capsys.readouterr().out
        assert "Table I" in output
        assert "add8_00M" in output
        assert "mul32_043" in output

    def test_explore_prints_table3_row(self, capsys):
        assert main(["explore", "--benchmark", "dotproduct", "--steps", "40", "--figures"]) == 0
        output = capsys.readouterr().out
        assert "Δpower sol" in output
        assert "Trend lines" in output
        assert "Average reward" in output

    def test_explore_with_random_agent(self, capsys):
        assert main(["explore", "--benchmark", "dotproduct", "--steps", "20",
                     "--agent", "random"]) == 0
        assert "Exploration of" in capsys.readouterr().out

    def test_compare_runs_all_explorers(self, capsys):
        assert main(["compare", "--benchmark", "dotproduct", "--steps", "30"]) == 0
        output = capsys.readouterr().out
        assert "q-learning" in output
        assert "simulated-annealing" in output
        assert "genetic" in output

    def test_sweep_prints_true_front_and_writes_json(self, capsys, tmp_path):
        out = tmp_path / "fronts.json"
        store = tmp_path / "sweep.sqlite"
        assert main(["sweep", "--benchmarks", "dotproduct", "--chunk-size", "96",
                     "--store", str(store), "--out", str(out)]) == 0
        output = capsys.readouterr().out
        assert "true front:" in output
        assert "288 evaluated" in output
        assert store.exists() and out.exists()

        import json
        payload = json.loads(out.read_text())
        assert payload[0]["space_size"] == 288
        assert payload[0]["front_size"] == len(payload[0]["front"])

        # Re-sweeping against the persisted store serves everything cached.
        assert main(["sweep", "--benchmarks", "dotproduct", "--chunk-size", "96",
                     "--store", str(store)]) == 0
        assert "(100 % hit rate)" in capsys.readouterr().out


class TestDeclarativeCli:
    """The spec-first surface: `run`, parameterized benchmarks, friendly errors."""

    def _write_spec(self, tmp_path, payload):
        path = tmp_path / "experiment.json"
        path.write_text(json.dumps(payload))
        return path

    def test_run_executes_a_campaign_spec(self, capsys, tmp_path):
        spec_path = self._write_spec(tmp_path, {
            "kind": "campaign",
            "benchmarks": ["dotproduct:length=12"],
            "agents": ["q-learning", "hill-climbing"],
            "seeds": [0],
            "max_steps": 20,
        })
        report_path = tmp_path / "report.json"
        assert main(["run", str(spec_path), "--out", str(report_path)]) == 0
        output = capsys.readouterr().out
        assert "Experiment campaign" in output
        assert "Agent q-learning" in output
        assert "Agent hill-climbing" in output
        report = json.loads(report_path.read_text())
        assert report["ok"] is True
        assert len(report["entries"]) == 2
        assert report["provenance"]["fingerprint"] in output

    def test_run_applies_dotted_overrides(self, capsys, tmp_path):
        spec_path = self._write_spec(tmp_path, {
            "kind": "explore",
            "benchmarks": ["dotproduct:length=12"],
            "agents": ["q-learning"],
            "seeds": [0],
            "max_steps": 500,
        })
        assert main(["run", str(spec_path), "--set", "max_steps=20",
                     "--set", "seeds=[2]"]) == 0
        assert "Exploration of dotproduct_12" in capsys.readouterr().out

    def test_run_matches_legacy_subcommand(self, capsys, tmp_path):
        assert main(["explore", "--benchmark", "dotproduct:length=12",
                     "--steps", "30", "--seed", "1"]) == 0
        legacy = capsys.readouterr().out
        spec_path = self._write_spec(tmp_path, {
            "kind": "explore",
            "benchmarks": ["dotproduct:length=12"],
            "agents": ["q-learning"],
            "seeds": [1],
            "max_steps": 30,
        })
        assert main(["run", str(spec_path)]) == 0
        spec_output = capsys.readouterr().out
        # The exploration summary (header + Table-III row) is identical;
        # `run` adds its own header and store/wall-clock trailer around it.
        assert legacy.strip() in spec_output

    def test_run_rejects_invalid_spec_with_exit_2(self, capsys, tmp_path):
        spec_path = self._write_spec(tmp_path, {
            "kind": "campaign",
            "benchmarks": ["dotproduct"],
            "agents": ["gradient-descent"],
        })
        assert main(["run", str(spec_path)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "q-learning" in err  # names the valid choices

    def test_run_missing_file_exits_2(self, capsys, tmp_path):
        assert main(["run", str(tmp_path / "nope.json")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_unknown_benchmark_in_spec_names_choices(self, capsys, tmp_path):
        spec_path = self._write_spec(tmp_path, {
            "kind": "campaign",
            "benchmarks": ["nothing"],
            "agents": ["q-learning"],
        })
        assert main(["run", str(spec_path)]) == 2
        err = capsys.readouterr().err
        assert "unknown benchmark 'nothing'" in err
        assert "matmul" in err and "dotproduct" in err

    def test_checked_in_example_spec_is_valid(self, capsys):
        example = Path(__file__).resolve().parent.parent / "examples" / \
            "experiment_campaign.json"
        payload = json.loads(example.read_text())
        from repro.experiments import ExperimentSpec

        spec = ExperimentSpec.from_dict(payload)
        assert spec.kind == "campaign"
        assert spec.fingerprint()

    def test_explore_accepts_parameterized_benchmark(self, capsys):
        assert main(["explore", "--benchmark", "dotproduct:length=12",
                     "--steps", "20"]) == 0
        assert "Exploration of dotproduct_12" in capsys.readouterr().out

    def test_explore_accepts_paper_label(self, capsys):
        assert main(["explore", "--benchmark", "matmul_10x10", "--steps", "5"]) == 0
        assert "Exploration of matmul_10x10" in capsys.readouterr().out

    def test_explore_runs_baseline_agents(self, capsys):
        assert main(["explore", "--benchmark", "dotproduct:length=12",
                     "--steps", "20", "--agent", "hill-climbing"]) == 0
        assert "with hill-climbing" in capsys.readouterr().out

    def test_campaign_runs_baselines_by_name(self, capsys):
        assert main(["campaign", "--benchmarks", "dotproduct:length=12",
                     "--agents", "q-learning", "hill-climbing", "genetic",
                     "--steps", "20"]) == 0
        output = capsys.readouterr().out
        assert "Agent q-learning" in output
        assert "Agent hill-climbing" in output
        assert "Agent genetic" in output

    def test_compare_honours_agent_selection(self, capsys):
        assert main(["compare", "--benchmark", "dotproduct:length=12",
                     "--steps", "20", "--agents", "q-learning", "exhaustive"]) == 0
        output = capsys.readouterr().out
        assert "q-learning" in output
        assert "exhaustive" in output

    def test_invalid_benchmark_parameter_value_exits_2(self, capsys):
        # Parses fine (rows is an int) but the constructor rejects it at
        # build time: friendly one-liner, not a traceback.
        assert main(["explore", "--benchmark", "matmul:rows=0"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_list_agents(self, capsys):
        assert main(["list-agents"]) == 0
        output = capsys.readouterr().out
        assert "q-learning" in output
        assert "simulated-annealing" in output
        assert "[baseline]" in output
