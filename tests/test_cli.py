"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_explore_defaults(self):
        args = build_parser().parse_args(["explore"])
        assert args.benchmark == "matmul"
        assert args.steps == 2000
        assert args.agent == "q-learning"

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explore", "--benchmark", "nothing"])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.benchmarks == ["dotproduct"]
        assert args.jobs == 1
        assert args.chunk_size == 256
        assert args.store is None and args.out is None


class TestCommands:
    def test_list_benchmarks(self, capsys):
        assert main(["list-benchmarks"]) == 0
        output = capsys.readouterr().out
        assert "matmul" in output
        assert "fir" in output

    def test_characterize_without_measurement(self, capsys):
        assert main(["characterize", "--no-measure"]) == 0
        output = capsys.readouterr().out
        assert "Table I" in output
        assert "add8_00M" in output
        assert "mul32_043" in output

    def test_explore_prints_table3_row(self, capsys):
        assert main(["explore", "--benchmark", "dotproduct", "--steps", "40", "--figures"]) == 0
        output = capsys.readouterr().out
        assert "Δpower sol" in output
        assert "Trend lines" in output
        assert "Average reward" in output

    def test_explore_with_random_agent(self, capsys):
        assert main(["explore", "--benchmark", "dotproduct", "--steps", "20",
                     "--agent", "random"]) == 0
        assert "Exploration of" in capsys.readouterr().out

    def test_compare_runs_all_explorers(self, capsys):
        assert main(["compare", "--benchmark", "dotproduct", "--steps", "30"]) == 0
        output = capsys.readouterr().out
        assert "q-learning" in output
        assert "simulated-annealing" in output
        assert "genetic" in output

    def test_sweep_prints_true_front_and_writes_json(self, capsys, tmp_path):
        out = tmp_path / "fronts.json"
        store = tmp_path / "sweep.sqlite"
        assert main(["sweep", "--benchmarks", "dotproduct", "--chunk-size", "96",
                     "--store", str(store), "--out", str(out)]) == 0
        output = capsys.readouterr().out
        assert "true front:" in output
        assert "288 evaluated" in output
        assert store.exists() and out.exists()

        import json
        payload = json.loads(out.read_text())
        assert payload[0]["space_size"] == 288
        assert payload[0]["front_size"] == len(payload[0]["front"])

        # Re-sweeping against the persisted store serves everything cached.
        assert main(["sweep", "--benchmarks", "dotproduct", "--chunk-size", "96",
                     "--store", str(store)]) == 0
        assert "(100 % hit rate)" in capsys.readouterr().out
