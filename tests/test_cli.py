"""Tests for the command-line interface."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_explore_defaults(self):
        args = build_parser().parse_args(["explore"])
        assert args.benchmark == "matmul"
        assert args.steps == 2000
        assert args.agent == "q-learning"

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explore", "--benchmark", "nothing"])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.benchmarks == ["dotproduct"]
        assert args.jobs == 1
        assert args.chunk_size == 256
        assert args.store is None and args.out is None


class TestCommands:
    def test_list_benchmarks(self, capsys):
        assert main(["list-benchmarks"]) == 0
        output = capsys.readouterr().out
        assert "matmul" in output
        assert "fir" in output

    def test_characterize_without_measurement(self, capsys):
        assert main(["characterize", "--no-measure"]) == 0
        output = capsys.readouterr().out
        assert "Table I" in output
        assert "add8_00M" in output
        assert "mul32_043" in output

    def test_explore_prints_table3_row(self, capsys):
        assert main(["explore", "--benchmark", "dotproduct", "--steps", "40", "--figures"]) == 0
        output = capsys.readouterr().out
        assert "Δpower sol" in output
        assert "Trend lines" in output
        assert "Average reward" in output

    def test_explore_with_random_agent(self, capsys):
        assert main(["explore", "--benchmark", "dotproduct", "--steps", "20",
                     "--agent", "random"]) == 0
        assert "Exploration of" in capsys.readouterr().out

    def test_compare_runs_all_explorers(self, capsys):
        assert main(["compare", "--benchmark", "dotproduct", "--steps", "30"]) == 0
        output = capsys.readouterr().out
        assert "q-learning" in output
        assert "simulated-annealing" in output
        assert "genetic" in output

    def test_sweep_prints_true_front_and_writes_json(self, capsys, tmp_path):
        out = tmp_path / "fronts.json"
        store = tmp_path / "sweep.sqlite"
        assert main(["sweep", "--benchmarks", "dotproduct", "--chunk-size", "96",
                     "--store", str(store), "--out", str(out)]) == 0
        output = capsys.readouterr().out
        assert "true front:" in output
        assert "288 evaluated" in output
        assert store.exists() and out.exists()

        import json
        payload = json.loads(out.read_text())
        assert payload[0]["space_size"] == 288
        assert payload[0]["front_size"] == len(payload[0]["front"])

        # Re-sweeping against the persisted store serves everything cached.
        assert main(["sweep", "--benchmarks", "dotproduct", "--chunk-size", "96",
                     "--store", str(store)]) == 0
        assert "(100 % hit rate)" in capsys.readouterr().out


class TestDeclarativeCli:
    """The spec-first surface: `run`, parameterized benchmarks, friendly errors."""

    def _write_spec(self, tmp_path, payload):
        path = tmp_path / "experiment.json"
        path.write_text(json.dumps(payload))
        return path

    def test_run_executes_a_campaign_spec(self, capsys, tmp_path):
        spec_path = self._write_spec(tmp_path, {
            "kind": "campaign",
            "benchmarks": ["dotproduct:length=12"],
            "agents": ["q-learning", "hill-climbing"],
            "seeds": [0],
            "max_steps": 20,
        })
        report_path = tmp_path / "report.json"
        assert main(["run", str(spec_path), "--out", str(report_path)]) == 0
        output = capsys.readouterr().out
        assert "Experiment campaign" in output
        assert "Agent q-learning" in output
        assert "Agent hill-climbing" in output
        report = json.loads(report_path.read_text())
        assert report["ok"] is True
        assert len(report["entries"]) == 2
        assert report["provenance"]["fingerprint"] in output

    def test_run_applies_dotted_overrides(self, capsys, tmp_path):
        spec_path = self._write_spec(tmp_path, {
            "kind": "explore",
            "benchmarks": ["dotproduct:length=12"],
            "agents": ["q-learning"],
            "seeds": [0],
            "max_steps": 500,
        })
        assert main(["run", str(spec_path), "--set", "max_steps=20",
                     "--set", "seeds=[2]"]) == 0
        assert "Exploration of dotproduct_12" in capsys.readouterr().out

    def test_run_matches_legacy_subcommand(self, capsys, tmp_path):
        assert main(["explore", "--benchmark", "dotproduct:length=12",
                     "--steps", "30", "--seed", "1"]) == 0
        legacy = capsys.readouterr().out
        spec_path = self._write_spec(tmp_path, {
            "kind": "explore",
            "benchmarks": ["dotproduct:length=12"],
            "agents": ["q-learning"],
            "seeds": [1],
            "max_steps": 30,
        })
        assert main(["run", str(spec_path)]) == 0
        spec_output = capsys.readouterr().out
        # The exploration summary (header + Table-III row) is identical;
        # `run` adds its own header and store/wall-clock trailer around it.
        assert legacy.strip() in spec_output

    def test_run_rejects_invalid_spec_with_exit_2(self, capsys, tmp_path):
        spec_path = self._write_spec(tmp_path, {
            "kind": "campaign",
            "benchmarks": ["dotproduct"],
            "agents": ["gradient-descent"],
        })
        assert main(["run", str(spec_path)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "q-learning" in err  # names the valid choices

    def test_run_missing_file_exits_2(self, capsys, tmp_path):
        assert main(["run", str(tmp_path / "nope.json")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_unknown_benchmark_in_spec_names_choices(self, capsys, tmp_path):
        spec_path = self._write_spec(tmp_path, {
            "kind": "campaign",
            "benchmarks": ["nothing"],
            "agents": ["q-learning"],
        })
        assert main(["run", str(spec_path)]) == 2
        err = capsys.readouterr().err
        assert "unknown benchmark 'nothing'" in err
        assert "matmul" in err and "dotproduct" in err

    def test_checked_in_example_spec_is_valid(self, capsys):
        example = Path(__file__).resolve().parent.parent / "examples" / \
            "experiment_campaign.json"
        payload = json.loads(example.read_text())
        from repro.experiments import ExperimentSpec

        spec = ExperimentSpec.from_dict(payload)
        assert spec.kind == "campaign"
        assert spec.fingerprint()

    def test_explore_accepts_parameterized_benchmark(self, capsys):
        assert main(["explore", "--benchmark", "dotproduct:length=12",
                     "--steps", "20"]) == 0
        assert "Exploration of dotproduct_12" in capsys.readouterr().out

    def test_explore_accepts_paper_label(self, capsys):
        assert main(["explore", "--benchmark", "matmul_10x10", "--steps", "5"]) == 0
        assert "Exploration of matmul_10x10" in capsys.readouterr().out

    def test_explore_runs_baseline_agents(self, capsys):
        assert main(["explore", "--benchmark", "dotproduct:length=12",
                     "--steps", "20", "--agent", "hill-climbing"]) == 0
        assert "with hill-climbing" in capsys.readouterr().out

    def test_campaign_runs_baselines_by_name(self, capsys):
        assert main(["campaign", "--benchmarks", "dotproduct:length=12",
                     "--agents", "q-learning", "hill-climbing", "genetic",
                     "--steps", "20"]) == 0
        output = capsys.readouterr().out
        assert "Agent q-learning" in output
        assert "Agent hill-climbing" in output
        assert "Agent genetic" in output

    def test_compare_honours_agent_selection(self, capsys):
        assert main(["compare", "--benchmark", "dotproduct:length=12",
                     "--steps", "20", "--agents", "q-learning", "exhaustive"]) == 0
        output = capsys.readouterr().out
        assert "q-learning" in output
        assert "exhaustive" in output

    def test_invalid_benchmark_parameter_value_exits_2(self, capsys):
        # Parses fine (rows is an int) but the constructor rejects it at
        # build time: friendly one-liner, not a traceback.
        assert main(["explore", "--benchmark", "matmul:rows=0"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_list_agents(self, capsys):
        assert main(["list-agents"]) == 0
        output = capsys.readouterr().out
        assert "q-learning" in output
        assert "simulated-annealing" in output
        assert "[baseline]" in output


class TestOutputPaths:
    """--out destinations: parents are created, unwritable paths exit 2."""

    def test_run_out_creates_missing_parents(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "kind": "explore",
            "benchmarks": ["dotproduct:length=12"],
            "agents": ["q-learning"],
            "seeds": [0],
            "max_steps": 10,
        }))
        out = tmp_path / "deeply" / "nested" / "report.json"
        assert main(["run", str(spec_path), "--out", str(out)]) == 0
        assert out.exists()
        assert json.loads(out.read_text())["ok"] is True

    def test_sweep_out_creates_missing_parents(self, capsys, tmp_path):
        out = tmp_path / "fronts" / "dir" / "fronts.json"
        assert main(["sweep", "--benchmarks", "dotproduct:length=8",
                     "--out", str(out)]) == 0
        assert out.exists()

    def test_unwritable_out_exits_2_with_one_line_error(self, capsys, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where a directory is needed")
        out = blocker / "sub" / "fronts.json"
        assert main(["sweep", "--benchmarks", "dotproduct:length=8",
                     "--out", str(out)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot write")
        assert "Traceback" not in err

    def test_unwritable_paper_out_exits_2(self, capsys, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        assert main(["paper", "--smoke", "--out", str(blocker / "arts")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot create artifact directory")
        assert "Traceback" not in err


class TestPaperCommand:
    """The artifact-pipeline front end: `repro-axc paper`."""

    def test_smoke_builds_all_artifacts(self, capsys, tmp_path):
        out = tmp_path / "artifacts"
        assert main(["paper", "--smoke", "--out", str(out)]) == 0
        output = capsys.readouterr().out
        for name in ("table1", "table2", "table3", "fig2", "fig3", "fig4"):
            assert f"{name}" in output
            assert (out / f"{name}.md").exists()
            assert (out / f"{name}.json").exists()
        assert "built" in output
        manifest = json.loads((out / "manifest.json").read_text())
        assert len(manifest["artifacts"]) == 6

    def test_second_invocation_is_cached(self, capsys, tmp_path):
        out = tmp_path / "artifacts"
        assert main(["paper", "--smoke", "--out", str(out)]) == 0
        manifest_before = (out / "manifest.json").read_bytes()
        capsys.readouterr()
        assert main(["paper", "--smoke", "--out", str(out)]) == 0
        output = capsys.readouterr().out
        assert "cached" in output and "built" not in output
        assert (out / "manifest.json").read_bytes() == manifest_before

    def test_artifact_selection(self, capsys, tmp_path):
        out = tmp_path / "artifacts"
        assert main(["paper", "--smoke", "--artifacts", "table1",
                     "--out", str(out)]) == 0
        assert (out / "table1.md").exists()
        assert not (out / "fig4.md").exists()

    def test_unknown_artifact_exits_2(self, capsys, tmp_path):
        assert main(["paper", "--smoke", "--artifacts", "table9",
                     "--out", str(tmp_path / "a")]) == 2
        err = capsys.readouterr().err
        assert "unknown artifact" in err and "table1" in err

    def test_list_artifacts(self, capsys):
        assert main(["paper", "--smoke", "--list"]) == 0
        output = capsys.readouterr().out
        assert "table1" in output and "fig4" in output
        assert "Table I" in output

    def test_scale_flags_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["paper", "--smoke", "--paper-scale"])


class TestPlanAndStore:
    """The `plan` and `store stats` subcommands plus `run --store/--explain`."""

    SWEEP = {
        "kind": "sweep",
        "benchmarks": ["dotproduct:length=4"],
        "seeds": [0],
        "runtime": {"chunk_size": 64},
    }
    COMPARE = {
        "kind": "compare",
        "benchmarks": ["dotproduct:length=4"],
        "agents": ["q-learning", "random"],
        "seeds": [0],
        "max_steps": 12,
    }

    def _write_spec(self, tmp_path, payload, name="spec.json"):
        spec_path = tmp_path / name
        spec_path.write_text(json.dumps(payload))
        return spec_path

    def _warm_store(self, tmp_path):
        """A sqlite store materializing the full dotproduct_4 seed-0 context."""
        from repro.experiments import ExperimentSpec, run_experiment
        from repro.runtime.store import EvaluationStore

        store = EvaluationStore(path=tmp_path / "evals.sqlite")
        run_experiment(ExperimentSpec.from_dict(self.SWEEP), store=store)
        return store.path

    def test_plan_summary_on_cold_batch(self, capsys, tmp_path):
        spec_path = self._write_spec(tmp_path, self.COMPARE)
        assert main(["plan", str(spec_path)]) == 0
        output = capsys.readouterr().out
        assert "plan " in output
        assert "2 unit(s)" in output and "2 to evaluate" in output
        assert "merge compare" in output

    def test_plan_explain_against_warm_store(self, capsys, tmp_path):
        store_path = self._warm_store(tmp_path)
        spec_path = self._write_spec(tmp_path, self.COMPARE)
        assert main(["plan", str(spec_path), "--store", str(store_path),
                     "--explain"]) == 0
        output = capsys.readouterr().out
        assert "2 answered by the store" in output
        assert "0 to evaluate" in output
        assert "replay" in output
        assert "dotproduct[seed=0" in output

    def test_plan_format_json(self, capsys, tmp_path):
        spec_path = self._write_spec(tmp_path, self.COMPARE)
        assert main(["plan", str(spec_path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["specs"] and payload["nodes"]
        kinds = {node["kind"] for node in payload["nodes"]}
        assert kinds == {"EvaluateJobs", "MergeReports"}

    def test_plan_missing_store_exits_2(self, capsys, tmp_path):
        spec_path = self._write_spec(tmp_path, self.COMPARE)
        assert main(["plan", str(spec_path), "--store",
                     str(tmp_path / "nope.sqlite")]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "does not exist" in err

    def test_plan_corrupt_store_exits_2(self, capsys, tmp_path):
        corrupt = tmp_path / "evals.sqlite"
        corrupt.write_bytes(b"this is not a sqlite database at all")
        spec_path = self._write_spec(tmp_path, self.COMPARE)
        assert main(["plan", str(spec_path), "--store", str(corrupt)]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "error:" in err

    def test_run_with_store_replays(self, capsys, tmp_path):
        store_path = self._warm_store(tmp_path)
        spec_path = self._write_spec(tmp_path, self.COMPARE)
        assert main(["run", str(spec_path), "--store", str(store_path)]) == 0
        output = capsys.readouterr().out
        assert "Experiment compare" in output
        assert "Explorer comparison on dotproduct_4" in output
        assert "100 % hit rate" in output  # everything replayed

    def test_run_explain_prints_the_plan(self, capsys, tmp_path):
        spec_path = self._write_spec(tmp_path, self.COMPARE)
        assert main(["run", str(spec_path), "--explain"]) == 0
        output = capsys.readouterr().out
        assert "plan " in output and "to evaluate" in output
        assert "Experiment compare" in output  # the report still prints

    def test_run_missing_store_exits_2(self, capsys, tmp_path):
        spec_path = self._write_spec(tmp_path, self.COMPARE)
        assert main(["run", str(spec_path), "--store",
                     str(tmp_path / "nope.sqlite")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_run_corrupt_store_exits_2(self, capsys, tmp_path):
        corrupt = tmp_path / "evals.sqlite"
        corrupt.write_bytes(b"\x00" * 64)
        spec_path = self._write_spec(tmp_path, self.COMPARE)
        assert main(["run", str(spec_path), "--store", str(corrupt)]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "error:" in err

    def test_store_stats_human(self, capsys, tmp_path):
        store_path = self._warm_store(tmp_path)
        assert main(["store", "stats", str(store_path)]) == 0
        output = capsys.readouterr().out
        assert "Evaluation store" in output
        assert "288 record(s)" in output
        assert "seed=0 unsigned: 288 record(s)" in output
        assert "lifetime:" in output

    def test_store_stats_json(self, capsys, tmp_path):
        store_path = self._warm_store(tmp_path)
        assert main(["store", "stats", str(store_path), "--format", "json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["records"] == 288
        assert len(info["contexts"]) == 1
        assert info["contexts"][0]["records"] == 288
        assert info["lifetime"]["misses"] == 288

    def test_store_stats_missing_path_exits_2(self, capsys, tmp_path):
        assert main(["store", "stats", str(tmp_path / "nope.sqlite")]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "does not exist" in err

    def test_store_stats_corrupt_file_exits_2(self, capsys, tmp_path):
        corrupt = tmp_path / "evals.sqlite"
        corrupt.write_bytes(b"garbage bytes, definitely not sqlite")
        assert main(["store", "stats", str(corrupt)]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "error:" in err
