"""Tests of the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


def test_all_library_errors_derive_from_repro_error():
    exception_types = [
        errors.ConfigurationError,
        errors.DesignSpaceError,
        errors.OperatorError,
        errors.UnknownOperatorError,
        errors.BenchmarkError,
        errors.UnknownBenchmarkError,
        errors.InstrumentationError,
        errors.EnvironmentError_,
        errors.ResetNeeded,
        errors.InvalidAction,
        errors.ExplorationError,
        errors.AgentError,
        errors.AnalysisError,
    ]
    for exception_type in exception_types:
        assert issubclass(exception_type, errors.ReproError)


def test_unknown_operator_error_is_a_key_error():
    assert issubclass(errors.UnknownOperatorError, KeyError)
    error = errors.UnknownOperatorError("add8_XYZ")
    assert "add8_XYZ" in str(error)
    assert error.name == "add8_XYZ"


def test_unknown_benchmark_error_is_a_key_error():
    assert issubclass(errors.UnknownBenchmarkError, KeyError)
    error = errors.UnknownBenchmarkError("missing")
    assert "missing" in str(error)


def test_reset_needed_and_invalid_action_are_environment_errors():
    assert issubclass(errors.ResetNeeded, errors.EnvironmentError_)
    assert issubclass(errors.InvalidAction, errors.EnvironmentError_)


def test_catching_repro_error_catches_specific_errors():
    with pytest.raises(errors.ReproError):
        raise errors.DesignSpaceError("bad point")
