"""Tests for the invariant lint engine (``repro.devtools``).

Fixture modules under ``tests/fixtures/lint/`` exercise each rule's
positive and negative cases; they are parsed by the engine, never
imported.  The meta-test at the bottom is the PR's own acceptance
criterion: ``repro-axc lint src`` must be clean on the shipped tree.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.devtools import checker_names, lint_paths, render_human, render_json
from repro.devtools.engine import JSON_FORMAT_VERSION, collect_files, parse_pragmas
from repro.devtools.registry import Checker, build_checkers, register_checker
from repro.errors import ConfigurationError

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint"


def fixture(name: str) -> str:
    path = FIXTURES / name
    assert path.is_file(), f"missing lint fixture {path}"
    return str(path)


def lint_fixture(name: str, *rules: str):
    return lint_paths([fixture(name)], rules=rules)


class TestRegistry:
    def test_all_four_rules_registered(self):
        assert set(checker_names()) >= {
            "determinism", "fingerprint-purity", "job-contract", "error-hygiene",
        }

    def test_unknown_rule_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="no-such-rule"):
            build_checkers(["no-such-rule"])

    def test_duplicate_registration_rejected(self):
        class Dupe(Checker):
            name = "determinism"
            description = "clash"

            def check(self, module):
                return iter(())

        with pytest.raises(ConfigurationError, match="determinism"):
            register_checker(Dupe)

    def test_missing_path_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="does not exist"):
            collect_files([str(FIXTURES / "no_such_file.py")])


class TestDeterminismRule:
    def test_flags_every_nondeterminism_source(self):
        report = lint_fixture("determinism_violations.py", "determinism")
        assert {v.rule for v in report.violations} == {"determinism"}
        assert [v.line for v in report.violations] == [
            16,  # np.random.choice: global numpy RNG
            20,  # random.random: global stdlib RNG
            24,  # default_rng(): unseeded (via from-import alias)
            28,  # time.time
            29,  # datetime.now
            34,  # os.environ
            35,  # os.getenv
            40,  # for over a set literal
            42,  # list(set(...))
            43,  # comprehension over a set
            44,  # str.join over a set
        ]

    def test_clean_patterns_not_flagged(self):
        report = lint_fixture("determinism_clean.py", "determinism")
        assert report.ok, render_human(report)


class TestFingerprintPurityRule:
    def test_flags_unfrozen_mutable_and_unguarded_vars(self):
        report = lint_fixture("fingerprint_violations.py", "fingerprint-purity")
        messages = [v.message for v in report.violations]
        assert len(messages) == 5
        assert "class MutableSpec defines fingerprint()" in messages[0]
        assert "class UnfrozenSpec defines fingerprint()" in messages[1]
        assert "LeakySpec.weights" in messages[2] and "'List'" in messages[2]
        assert "LeakySpec.table" in messages[3] and "'Dict'" in messages[3]
        assert "vars()/__dict__ without excluding underscore attrs" in messages[4]

    def test_clean_patterns_not_flagged(self):
        report = lint_fixture("fingerprint_clean.py", "fingerprint-purity")
        assert report.ok, render_human(report)


class TestJobContractRule:
    def test_flags_every_unpicklable_field_shape(self):
        report = lint_fixture("job_contract_violations.py", "job-contract")
        messages = [v.message for v in report.violations]
        assert len(messages) == 6
        assert "MutableJob must be frozen" in messages[0]
        assert "LeakyJob.hook is annotated as a callable" in messages[1]
        # The module-level `StepHook = Callable[...]` alias is resolved too.
        assert "LeakyJob.step_hook is annotated as a callable" in messages[2]
        assert "LeakyJob.stream is annotated as a generator/iterator" in messages[3]
        assert "LeakyJob.log is annotated as a open handle" in messages[4]
        assert "LeakyJob.fallback defaults to a lambda" in messages[5]

    def test_clean_patterns_not_flagged(self):
        report = lint_fixture("job_contract_clean.py", "job-contract")
        assert report.ok, render_human(report)


class TestErrorHygieneRule:
    def test_flags_swallowed_broad_handlers(self):
        report = lint_fixture("error_hygiene_violations.py", "error-hygiene")
        assert [(v.rule, v.line) for v in report.violations] == [
            ("error-hygiene", 7),   # except Exception: return None
            ("error-hygiene", 14),  # except BaseException: repr(exc) only
            ("error-hygiene", 21),  # bare except
        ]

    def test_reraise_capture_and_helper_delegation_are_compliant(self):
        report = lint_fixture("error_hygiene_clean.py", "error-hygiene")
        assert report.ok, render_human(report)

    def test_runtime_modules_must_also_classify_retryability(self):
        report = lint_fixture("runtime/error_hygiene_runtime_violations.py",
                              "error-hygiene")
        assert [(v.rule, v.line) for v in report.violations] == [
            ("error-hygiene", 14),  # traceback captured, never classified
            ("error-hygiene", 25),  # helper captures, nobody classifies
        ]
        assert all("retryable" in v.message for v in report.violations)

    def test_runtime_classification_patterns_are_compliant(self):
        # Inline is_retryable, helper delegation (one and two hops), re-raise.
        report = lint_fixture("runtime/error_hygiene_runtime_clean.py",
                              "error-hygiene")
        assert report.ok, render_human(report)

    def test_classification_rule_only_applies_under_runtime_paths(self):
        # The plain fixtures capture tracebacks without classifying; outside
        # a runtime/ directory that stays compliant.
        report = lint_fixture("error_hygiene_clean.py", "error-hygiene")
        assert report.ok, render_human(report)


class TestPragmas:
    def test_parse_pragma_grammar(self):
        pragmas = parse_pragmas(
            "x = 1  # repro: disable=determinism\n"
            "y = 2  # repro: disable=a,b -- because\n"
            "z = 3  # plain comment\n"
        )
        assert pragmas[1].rules == ("determinism",) and pragmas[1].reason is None
        assert pragmas[2].rules == ("a", "b") and pragmas[2].reason == "because"
        assert pragmas[2].covers("a") and not pragmas[2].covers("c")
        assert 3 not in pragmas

    def test_pragma_suppression_and_reason_enforcement(self):
        report = lint_fixture("pragma_cases.py")
        # Suppressed: reasonless determinism pragma, disable=all, and the
        # reasoned error-hygiene pragma.
        assert report.suppressed == 3
        # Re-reported: the reasonless error-hygiene pragma (requires_reason).
        assert len(report.violations) == 1
        violation = report.violations[0]
        assert violation.rule == "error-hygiene"
        assert "pragma must carry a reason" in violation.message


class TestSyntaxErrors:
    def test_unparseable_file_is_reported_not_raised(self):
        report = lint_fixture("broken_syntax.py")
        assert [v.rule for v in report.violations] == ["syntax-error"]
        assert "does not parse" in report.violations[0].message
        assert report.files_checked == 1


class TestRendering:
    def test_human_rendering_has_location_rule_and_summary(self):
        report = lint_fixture("error_hygiene_violations.py", "error-hygiene")
        text = render_human(report)
        assert "error_hygiene_violations.py:7:5: [error-hygiene]" in text
        assert "3 violation(s), 1 file checked" in text

    def test_json_schema(self):
        report = lint_fixture("job_contract_violations.py", "job-contract")
        payload = json.loads(render_json(report))
        assert payload["version"] == JSON_FORMAT_VERSION
        assert payload["ok"] is False
        assert payload["files_checked"] == 1
        assert payload["suppressed"] == 0
        assert payload["rules"] == ["job-contract"]
        assert len(payload["violations"]) == 6
        first = payload["violations"][0]
        assert set(first) == {"rule", "path", "line", "column", "message"}
        assert first["rule"] == "job-contract"
        assert first["path"].endswith("job_contract_violations.py")

    def test_json_reports_clean_runs_as_ok(self):
        report = lint_fixture("job_contract_clean.py", "job-contract")
        payload = json.loads(render_json(report))
        assert payload["ok"] is True and payload["violations"] == []


class TestCli:
    def test_violations_exit_1_with_rule_and_location(self, capsys):
        assert main(["lint", fixture("determinism_violations.py")]) == 1
        output = capsys.readouterr().out
        assert "[determinism]" in output
        assert "determinism_violations.py:16:" in output

    def test_clean_paths_exit_0(self, capsys):
        assert main(["lint", fixture("determinism_clean.py"),
                     fixture("job_contract_clean.py")]) == 0
        assert "2 files checked: clean" in capsys.readouterr().out

    def test_rules_filter(self, capsys):
        assert main(["lint", fixture("determinism_violations.py"),
                     "--rules", "job-contract"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_json_format(self, capsys):
        assert main(["lint", fixture("error_hygiene_violations.py"),
                     "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert {v["rule"] for v in payload["violations"]} == {"error-hygiene"}

    def test_unknown_rule_exits_2(self, capsys):
        assert main(["lint", fixture("determinism_clean.py"),
                     "--rules", "no-such-rule"]) == 2
        assert "no-such-rule" in capsys.readouterr().err

    def test_missing_path_exits_2(self, capsys):
        assert main(["lint", str(FIXTURES / "no_such_file.py")]) == 2
        assert "does not exist" in capsys.readouterr().err


class TestShippedTreeIsClean:
    def test_lint_src_exits_0(self, capsys):
        """The engine's own acceptance bar: the shipped tree lints clean."""
        assert main(["lint", str(REPO_ROOT / "src")]) == 0
        assert "clean" in capsys.readouterr().out
