"""Tests for the LUT-compiled operator kernels and the evaluation fast path.

The contract under test is *bit-identity*: compiling an operator, or running
an evaluator in compiled mode, may only change wall-clock — never a single
bit of any result, profile, cost or store key.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchmarks import registry
from repro.dse.design_space import DesignPoint
from repro.dse.evaluator import Evaluator
from repro.errors import OperatorError
from repro.operators import (
    CompiledAdder,
    CompiledMultiplier,
    DrumMultiplier,
    ExactAdder,
    ExactMultiplier,
    LogMultiplier,
    LowerOrAdder,
    TruncatedAdder,
    compile_operator,
    default_catalog,
    is_compilable,
)
from repro.operators.base import _MAX_SAFE_BITS
from repro.operators.compiled import MAX_COMPILED_WIDTH
from repro.runtime.store import EvaluationStore


def _compilable_entries():
    catalog = default_catalog()
    return [
        entry for entry in list(catalog.adders) + list(catalog.multipliers)
        if is_compilable(catalog.instance(entry.name))
    ]


def _entry_ids():
    return [entry.name for entry in _compilable_entries()]


class TestCompileOperator:
    def test_exact_operators_are_returned_unchanged(self):
        adder = ExactAdder(8)
        multiplier = ExactMultiplier(8)
        assert compile_operator(adder) is adder
        assert compile_operator(multiplier) is multiplier

    def test_wide_operators_are_returned_unchanged(self):
        wide_adder = TruncatedAdder(16, cut=11)
        wide_multiplier = DrumMultiplier(32, k=7)
        assert compile_operator(wide_adder) is wide_adder
        assert compile_operator(wide_multiplier) is wide_multiplier
        assert not is_compilable(wide_adder)
        assert not is_compilable(wide_multiplier)

    def test_width_cap_is_respected(self):
        narrow = TruncatedAdder(8, cut=3)
        assert is_compilable(narrow)
        assert not is_compilable(narrow, max_width=7)
        assert compile_operator(narrow, max_width=7) is narrow

    def test_compiled_operator_keeps_identity(self):
        base = LowerOrAdder(8, cut=4, name="add8_6R6")
        compiled = compile_operator(base)
        assert isinstance(compiled, CompiledAdder)
        assert compiled.name == base.name
        assert compiled.width == base.width
        assert compiled.kind is base.kind
        assert compiled.base is base

    def test_compiling_a_compiled_operator_is_a_no_op(self):
        compiled = compile_operator(DrumMultiplier(8, k=3))
        assert isinstance(compiled, CompiledMultiplier)
        assert compile_operator(compiled) is compiled

    def test_tables_are_shared_between_equal_units(self):
        first = compile_operator(TruncatedAdder(8, cut=3, name="one"))
        second = compile_operator(TruncatedAdder(8, cut=3, name="two"))
        assert first._native_table is second._native_table
        assert np.shares_memory(first._signed_flat, second._signed_flat)

    def test_different_parameters_get_different_tables(self):
        first = compile_operator(TruncatedAdder(8, cut=3))
        second = compile_operator(TruncatedAdder(8, cut=4))
        assert first._native_table is not second._native_table

    def test_max_compiled_width_covers_the_paper_units(self):
        assert MAX_COMPILED_WIDTH >= 8


class TestExhaustiveEquivalence:
    """Every compilable catalog operator, over its *entire* native domain."""

    @pytest.mark.parametrize("entry", _compilable_entries(), ids=_entry_ids())
    def test_compute_native_matches_over_full_unsigned_domain(self, entry):
        catalog = default_catalog()
        base = catalog.instance(entry.name)
        compiled = compile_operator(base)
        if compiled.kind.value == "adder":
            side = 1 << (entry.width + 1)   # the base class masks to width+1 bits
        else:
            side = 1 << min(entry.width, (_MAX_SAFE_BITS // 2) - 1)
        operands = np.arange(side, dtype=np.int64)
        expected = base._compute_native(operands[:, None], operands[None, :])
        actual = compiled._compute_native(operands[:, None], operands[None, :])
        np.testing.assert_array_equal(np.asarray(expected), np.asarray(actual))

    @pytest.mark.parametrize("entry", _compilable_entries(), ids=_entry_ids())
    def test_apply_matches_over_full_signed_native_domain(self, entry):
        catalog = default_catalog()
        base = catalog.instance(entry.name)
        compiled = compile_operator(base)
        # Covers the shift-0 fast path and the boundary into scaling.
        operands = np.arange(-(1 << entry.width), 1 << entry.width, dtype=np.int64)
        expected = base.apply(operands[:, None], operands[None, :])
        actual = compiled.apply(operands[:, None], operands[None, :])
        np.testing.assert_array_equal(expected, actual)

    @pytest.mark.parametrize("entry", _compilable_entries(), ids=_entry_ids())
    def test_apply_matches_on_wide_operands(self, entry):
        # Dynamic-range scaling: operands far beyond the native width.
        catalog = default_catalog()
        base = catalog.instance(entry.name)
        compiled = compile_operator(base)
        rng = np.random.default_rng(42)
        for scale_bits in (10, 16, 24):
            bound = 1 << scale_bits
            a = rng.integers(-bound, bound, size=4096)
            b = rng.integers(-bound, bound, size=4096)
            np.testing.assert_array_equal(base.apply(a, b), compiled.apply(a, b))

    @pytest.mark.parametrize("entry", _compilable_entries(), ids=_entry_ids())
    def test_apply_matches_on_mixed_range_operands(self, entry):
        # In-range and out-of-range elements in one call: per-element shifts.
        catalog = default_catalog()
        base = catalog.instance(entry.name)
        compiled = compile_operator(base)
        rng = np.random.default_rng(7)
        a = np.concatenate([
            rng.integers(-100, 100, size=64),
            rng.integers(-2 ** 22, 2 ** 22, size=64),
        ])
        b = rng.permutation(a)
        np.testing.assert_array_equal(base.apply(a, b), compiled.apply(a, b))

    @pytest.mark.parametrize("entry", _compilable_entries(), ids=_entry_ids())
    def test_scalar_and_broadcast_calls_match(self, entry):
        catalog = default_catalog()
        base = catalog.instance(entry.name)
        compiled = compile_operator(base)
        assert int(base.apply(93, -41)) == int(compiled.apply(93, -41))
        column = np.arange(-5, 6, dtype=np.int64)[:, None]
        row = np.arange(-3, 4, dtype=np.int64)[None, :]
        np.testing.assert_array_equal(base.apply(column, row), compiled.apply(column, row))

    def test_compiled_multiplier_overflow_guard_matches_base(self):
        base = DrumMultiplier(8, k=3)
        compiled = compile_operator(base)
        huge = np.array([1 << 32], dtype=np.int64)
        with pytest.raises(OperatorError):
            base.apply(huge, huge)
        with pytest.raises(OperatorError):
            compiled.apply(huge, huge)

    def test_compiled_operator_rejects_floats_like_the_base(self):
        compiled = compile_operator(LogMultiplier(8))
        with pytest.raises(OperatorError):
            compiled.apply(1.5, 2)

    def test_log_multiplier_lut_matches_exhaustively(self):
        # The heaviest analytic model, singled out: full positive domain.
        base = LogMultiplier(8)
        compiled = compile_operator(base)
        operands = np.arange(256, dtype=np.int64)
        np.testing.assert_array_equal(
            base.apply(operands[:, None], operands[None, :]),
            compiled.apply(operands[:, None], operands[None, :]),
        )


# Small configurations of every registered benchmark: compiled and analytic
# evaluators must produce bit-identical records for each of them.
_SMALL_BENCHMARKS = {
    "matmul": {"rows": 5, "inner": 5, "cols": 5},
    "fir": {"num_samples": 16, "num_taps": 4},
    "conv2d": {"height": 6, "width": 6},
    "dct": {"block_size": 4, "num_blocks": 1},
    "sobel": {"height": 6, "width": 6},
    "dotproduct": {"length": 16},
    "kmeans": {"num_points": 8, "num_centroids": 2, "dimensions": 3},
}


class TestEvaluatorEquivalence:
    def _sample_points(self, space, limit=24):
        stride = max(space.size // limit, 1)
        return [space.point_at(index) for index in range(0, space.size, stride)]

    @pytest.mark.parametrize("name", sorted(_SMALL_BENCHMARKS), ids=sorted(_SMALL_BENCHMARKS))
    def test_compiled_and_analytic_records_are_bit_identical(self, name):
        benchmark = registry.create(name, **_SMALL_BENCHMARKS[name])
        analytic = Evaluator(benchmark, seed=11, compiled=False)
        compiled = Evaluator(benchmark, seed=11, compiled=True)

        assert analytic.store_context == compiled.store_context
        np.testing.assert_array_equal(analytic.precise_outputs, compiled.precise_outputs)
        assert analytic.precise_cost == compiled.precise_cost

        for point in self._sample_points(analytic.design_space):
            expected = analytic.evaluate(point)
            actual = compiled.evaluate(point)
            assert expected.deltas == actual.deltas, point
            assert expected.approx_cost == actual.approx_cost, point
            np.testing.assert_array_equal(expected.outputs, actual.outputs)

    @pytest.mark.parametrize("name", sorted(_SMALL_BENCHMARKS), ids=sorted(_SMALL_BENCHMARKS))
    def test_profiles_are_bit_identical(self, name):
        benchmark = registry.create(name, **_SMALL_BENCHMARKS[name])
        analytic = Evaluator(benchmark, seed=3, compiled=False)
        compiled = Evaluator(benchmark, seed=3, compiled=True)
        space = analytic.design_space
        point = space.most_aggressive_point()

        analytic_context = analytic.context_for(point)
        compiled_context = compiled.context_for(point)
        benchmark.execute(analytic_context, analytic.inputs)
        benchmark.execute(compiled_context, compiled.inputs)
        assert analytic_context.profile == compiled_context.profile

    def test_compiled_evaluations_serve_analytic_evaluators_from_the_store(self):
        # Same keys, same records: the store cannot tell the paths apart.
        benchmark = registry.create("matmul", **_SMALL_BENCHMARKS["matmul"])
        store = EvaluationStore()
        compiled = Evaluator(benchmark, seed=5, compiled=True, store=store)
        point = compiled.design_space.most_aggressive_point()
        record = compiled.evaluate(point)

        analytic = Evaluator(benchmark, seed=5, compiled=False, store=store)
        assert analytic.evaluate(point) is record
        assert store.stats.hits >= 1

    def test_compiled_flag_is_exposed(self):
        benchmark = registry.create("dotproduct", length=8)
        assert Evaluator(benchmark).compiled is True
        assert Evaluator(benchmark, compiled=False).compiled is False

    def test_compiled_context_uses_lut_kernels_for_narrow_units(self):
        benchmark = registry.create("matmul", **_SMALL_BENCHMARKS["matmul"])
        evaluator = Evaluator(benchmark, compiled=True)
        space = evaluator.design_space
        point = DesignPoint(2, 2, (True,) * space.num_variables)
        context = evaluator.context_for(point, trusted=True)
        assert context.trusted
        approx_adder = context._approx_adder
        approx_multiplier = context._approx_multiplier
        assert isinstance(approx_adder, CompiledAdder)
        assert isinstance(approx_multiplier, CompiledMultiplier)

    def test_public_context_still_validates_operands_by_default(self):
        # context_for without trusted=True keeps the validating apply path,
        # so external callers probing their own data still get OperatorError
        # for bad operands even on a compiled evaluator.
        benchmark = registry.create("matmul", **_SMALL_BENCHMARKS["matmul"])
        evaluator = Evaluator(benchmark, compiled=True)
        point = DesignPoint(2, 2, (True,) * evaluator.design_space.num_variables)
        context = evaluator.context_for(point)
        assert not context.trusted
        with pytest.raises(OperatorError):
            context.mul(np.array([0.5]), np.array([2]), variables=("a",))

    def test_non_integer_auxiliary_inputs_fall_back_to_validating_contexts(self):
        # A benchmark may generate auxiliary float data it consumes outside
        # the context; the evaluator must accept it (on both paths) and keep
        # per-call operand validation, since trusted dispatch can no longer
        # be guaranteed.
        from repro.benchmarks.base import Benchmark

        class AuxBenchmark(Benchmark):
            name = "aux"
            variables = ("u",)
            add_width = 8
            mul_width = 8

            def generate_inputs(self, rng):
                return {
                    "u": rng.integers(0, 100, size=8),
                    "scale": rng.random(8),  # never an operand
                }

            def run(self, context, inputs):
                doubled = context.mul(np.asarray(inputs["u"]), 2, variables=("u",))
                return np.where(np.asarray(inputs["scale"]) > 2.0, 0, doubled)

        compiled = Evaluator(AuxBenchmark(), seed=1, compiled=True)
        analytic = Evaluator(AuxBenchmark(), seed=1, compiled=False)
        assert compiled.inputs["scale"].dtype.kind == "f"
        point = compiled.design_space.most_aggressive_point()
        assert compiled._trusted is False  # operands no longer guaranteed
        expected = analytic.evaluate(point)
        actual = compiled.evaluate(point)
        assert expected.deltas == actual.deltas
        np.testing.assert_array_equal(expected.outputs, actual.outputs)

    def test_runtime_spec_compiled_flag_reaches_experiment_runs(self):
        from repro.experiments import ExperimentSpec, RuntimeSpec, run_experiment

        payload = {
            "kind": "explore",
            "benchmarks": [{"name": "dotproduct", "params": {"length": 8}}],
            "agents": [{"name": "random"}],
            "seeds": [0],
            "max_steps": 10,
        }
        fast_spec = ExperimentSpec.from_dict(payload)
        slow_spec = fast_spec.with_runtime(RuntimeSpec(compiled=False))
        assert fast_spec.runtime.compiled and not slow_spec.runtime.compiled
        # The flag is runtime territory: it must not move the fingerprint,
        # and it must not move a single result bit.
        assert fast_spec.fingerprint() == slow_spec.fingerprint()
        round_tripped = RuntimeSpec.from_dict(slow_spec.runtime.to_dict())
        assert round_tripped.compiled is False
        fast_report = run_experiment(fast_spec)
        slow_report = run_experiment(slow_spec)
        assert fast_report.entries == slow_report.entries

    def test_sweep_compiled_flag_produces_identical_fronts(self):
        from repro.benchmarks import DotProductBenchmark
        from repro.dse.sweep import run_sweep

        benchmarks = {"dot": DotProductBenchmark(length=8)}
        fast = run_sweep(benchmarks, chunk_size=64)[0]
        slow = run_sweep(benchmarks, chunk_size=64, compiled=False)[0]
        assert fast.evaluations == slow.evaluations == fast.space_size
        assert [(record.point.key(), record.deltas) for record in fast.front] == \
            [(record.point.key(), record.deltas) for record in slow.front]

    def test_analytic_context_keeps_analytic_kernels(self):
        benchmark = registry.create("matmul", **_SMALL_BENCHMARKS["matmul"])
        evaluator = Evaluator(benchmark, compiled=False)
        point = DesignPoint(2, 2, (True,) * evaluator.design_space.num_variables)
        context = evaluator.context_for(point)
        assert not context.trusted
        assert not isinstance(context._approx_adder, CompiledAdder)
        assert not isinstance(context._approx_multiplier, CompiledMultiplier)
