"""Tests for exploration results, summaries and Pareto-front extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dse import ExplorationThresholds, StepRecord, dominates, pareto_front, pareto_points
from repro.dse.design_space import DesignPoint
from repro.dse.results import ExplorationResult
from repro.errors import AnalysisError
from repro.metrics import ObjectiveDeltas
from repro.operators.energy import RunCost


def _record(step, accuracy, power, time, reward=0.0, cumulative=0.0, adder=1, multiplier=1,
            is_baseline=False):
    return StepRecord(
        step=step,
        action=None if step == 0 else 0,
        point=DesignPoint(adder, multiplier, (False, False)),
        deltas=ObjectiveDeltas(accuracy=accuracy, power_mw=power, time_ns=time),
        reward=reward,
        cumulative_reward=cumulative,
        is_baseline=is_baseline,
    )


def _result(records, accuracy_threshold=10.0):
    return ExplorationResult(
        benchmark_name="synthetic",
        records=records,
        thresholds=ExplorationThresholds(accuracy=accuracy_threshold, power_mw=5.0, time_ns=5.0),
        precise_cost=RunCost(power_mw=100.0, time_ns=100.0, operation_count=10),
    )


class TestExplorationResult:
    def test_requires_records(self):
        with pytest.raises(AnalysisError):
            _result([])

    def test_series_extraction(self):
        result = _result([_record(0, 1.0, 2.0, 3.0), _record(1, 4.0, 5.0, 6.0)])
        np.testing.assert_allclose(result.accuracy_series(), [1.0, 4.0])
        np.testing.assert_allclose(result.power_series(), [2.0, 5.0])
        np.testing.assert_allclose(result.time_series(), [3.0, 6.0])

    def test_solution_is_last_step(self):
        result = _result([_record(0, 0, 0, 0), _record(1, 1, 10, 20)])
        assert result.solution.step == 1
        assert result.solution.deltas.power_mw == 10

    def test_objective_summaries_are_min_solution_max(self):
        result = _result([
            _record(0, 0.0, 1.0, 9.0),
            _record(1, 5.0, 7.0, 2.0),
            _record(2, 3.0, 4.0, 5.0),
        ])
        power = result.power_summary()
        assert (power.minimum, power.solution, power.maximum) == (1.0, 4.0, 7.0)
        accuracy = result.accuracy_summary()
        assert (accuracy.minimum, accuracy.solution, accuracy.maximum) == (0.0, 3.0, 5.0)
        time = result.time_summary()
        assert (time.minimum, time.solution, time.maximum) == (2.0, 5.0, 9.0)

    def test_best_feasible_maximises_gains_within_threshold(self):
        result = _result([
            _record(0, 0.0, 1.0, 1.0),
            _record(1, 50.0, 100.0, 100.0),   # infeasible (accuracy)
            _record(2, 5.0, 30.0, 30.0),      # feasible, best gains
            _record(3, 2.0, 10.0, 10.0),
        ])
        best = result.best_feasible()
        assert best.step == 2

    def test_best_feasible_none_when_all_violate(self):
        result = _result([_record(0, 99.0, 1.0, 1.0)], accuracy_threshold=1.0)
        assert result.best_feasible() is None

    def test_feasible_fraction(self):
        result = _result([
            _record(0, 0.0, 0, 0),
            _record(1, 20.0, 0, 0),
            _record(2, 5.0, 0, 0),
            _record(3, 30.0, 0, 0),
        ])
        assert result.feasible_fraction() == pytest.approx(0.5)

    def test_feasible_fraction_excludes_synthetic_baseline(self):
        result = _result([
            _record(0, 0.0, 0, 0, is_baseline=True),  # do-nothing start, feasible
            _record(1, 20.0, 0, 0),
            _record(2, 5.0, 0, 0),
            _record(3, 30.0, 0, 0),
        ])
        # The trivially feasible step 0 neither counts nor enters the
        # denominator; the historical figure remains available on request.
        assert result.feasible_fraction() == pytest.approx(1 / 3)
        assert result.feasible_fraction(include_baseline=True) == pytest.approx(0.5)

    def test_best_feasible_ignores_synthetic_baseline(self):
        result = _result([
            _record(0, 0.0, 0.0, 0.0, is_baseline=True),
            _record(1, 50.0, 100.0, 100.0),  # infeasible
        ])
        # Previously the do-nothing starting point was reported as "best
        # feasible" even though every real step violated the constraint.
        assert result.best_feasible() is None
        baseline = result.best_feasible(include_baseline=True)
        assert baseline is not None and baseline.step == 0

    def test_feasible_fraction_of_baseline_only_trace(self):
        result = _result([_record(0, 0.0, 0, 0, is_baseline=True)])
        assert result.feasible_fraction() == 0.0
        assert result.best_feasible() is None

    def test_average_reward_windows(self):
        records = [_record(i, 0, 0, 0, reward=float(i % 2)) for i in range(10)]
        result = _result(records)
        averages = result.average_reward(window=5)
        assert averages.shape == (2,)
        np.testing.assert_allclose(averages, [0.4, 0.6])

    def test_average_reward_invalid_window(self):
        result = _result([_record(0, 0, 0, 0)])
        with pytest.raises(AnalysisError):
            result.average_reward(window=0)

    def test_table3_row_and_selected_operators(self, catalog):
        restricted = catalog.restrict_widths(8, 8)
        records = [_record(0, 0, 0, 0), _record(1, 1, 2, 3, adder=2, multiplier=3)]
        result = _result(records)
        row = result.table3_row(restricted)
        assert row["benchmark"] == "synthetic"
        assert row["adder"] == restricted.adder(2).name
        assert row["multiplier"] == restricted.multiplier(3).name
        assert row["power_mw"].solution == 2.0


class TestExplorerTraceFlags:
    def test_step0_is_marked_baseline_and_truncation_recorded(self, matmul_env):
        from repro.agents import RandomAgent
        from repro.dse import Explorer

        agent = RandomAgent(num_actions=matmul_env.action_space.n, seed=0)
        result = Explorer(matmul_env, agent, max_steps=15).run(seed=0)
        assert result.records[0].is_baseline
        assert all(not record.is_baseline for record in result.records[1:])
        assert result.truncated is False  # budget exhaustion is not truncation

    def test_truncation_is_distinguishable_from_budget_exhaustion(self, small_matmul):
        from repro.agents import RandomAgent
        from repro.dse import AxcDseEnv, Explorer
        from repro.gymlite.wrappers import TimeLimit

        environment = TimeLimit(AxcDseEnv(small_matmul, evaluation_seed=0),
                                max_episode_steps=5)
        agent = RandomAgent(num_actions=environment.action_space.n, seed=0)
        result = Explorer(environment, agent, max_steps=50).run(seed=0)
        assert result.truncated is True
        assert result.terminated is False
        assert result.num_steps == 6  # baseline + the 5 steps the wrapper allowed


class TestPareto:
    def test_dominates(self):
        better = _record(0, 1.0, 10.0, 10.0)
        worse = _record(1, 2.0, 5.0, 5.0)
        assert dominates(better, worse)
        assert not dominates(worse, better)

    def test_no_domination_between_trade_offs(self):
        low_error = _record(0, 1.0, 5.0, 5.0)
        high_gain = _record(1, 3.0, 20.0, 20.0)
        assert not dominates(low_error, high_gain)
        assert not dominates(high_gain, low_error)

    def test_pareto_front_removes_dominated_points(self):
        records = [
            _record(0, 1.0, 10.0, 10.0, adder=1),
            _record(1, 2.0, 5.0, 5.0, adder=2),    # dominated by record 0
            _record(2, 0.5, 2.0, 2.0, adder=3),    # trade-off: keeps lower error
            _record(3, 3.0, 20.0, 20.0, adder=4),  # trade-off: keeps higher gain
        ]
        front = pareto_front(records)
        steps = {record.step for record in front}
        assert steps == {0, 2, 3}

    def test_pareto_front_deduplicates_identical_points(self):
        duplicated = [_record(0, 1.0, 10.0, 10.0), _record(1, 1.0, 10.0, 10.0)]
        assert len(pareto_front(duplicated)) == 1

    def test_pareto_points_sorted_by_accuracy(self):
        records = [
            _record(0, 3.0, 20.0, 20.0, adder=1),
            _record(1, 0.5, 2.0, 2.0, adder=2),
        ]
        points = pareto_points(records)
        assert points[0][0] <= points[1][0]
