"""Tests for the benchmark kernels, workload generators and registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchmarks import (
    Convolution2DBenchmark,
    DctBenchmark,
    DotProductBenchmark,
    FirBenchmark,
    KMeansAssignBenchmark,
    MatMulBenchmark,
    SobelBenchmark,
    available,
    create,
    paper_benchmarks,
    register,
    workloads,
)
from repro.errors import BenchmarkError, ConfigurationError, UnknownBenchmarkError
from repro.instrumentation import ApproxContext
from repro.operators import ExactAdder, ExactMultiplier


def _precise_context() -> ApproxContext:
    return ApproxContext(ExactAdder(16, name="add"), ExactMultiplier(32, name="mul"))


ALL_BENCHMARKS = [
    MatMulBenchmark(rows=4, inner=5, cols=3),
    FirBenchmark(num_samples=20, num_taps=4),
    Convolution2DBenchmark(height=8, width=9),
    DctBenchmark(block_size=4, num_blocks=2),
    SobelBenchmark(height=8, width=8),
    DotProductBenchmark(length=12),
    KMeansAssignBenchmark(num_points=10, num_centroids=3, dimensions=2),
]


class TestWorkloads:
    def test_white_noise_range_and_shape(self, rng):
        signal = workloads.white_noise(rng, 1000, amplitude=50)
        assert signal.shape == (1000,)
        assert signal.min() >= -50 and signal.max() <= 50

    def test_white_noise_invalid_args(self, rng):
        with pytest.raises(BenchmarkError):
            workloads.white_noise(rng, 0)
        with pytest.raises(BenchmarkError):
            workloads.white_noise(rng, 10, amplitude=0)

    def test_random_matrix_bounds(self, rng):
        matrix = workloads.random_matrix(rng, 5, 7, value_bits=4)
        assert matrix.shape == (5, 7)
        assert matrix.min() >= 0 and matrix.max() < 16

    def test_random_image_is_8bit(self, rng):
        image = workloads.random_image(rng, 16, 24)
        assert image.shape == (16, 24)
        assert image.min() >= 0 and image.max() <= 255

    def test_lowpass_coefficients_sum_close_to_unity_gain(self):
        taps = workloads.lowpass_coefficients(16, scale_bits=7)
        assert taps.shape == (16,)
        # Quantised unity gain: the taps sum to roughly 2**scale_bits.
        assert abs(int(taps.sum()) - 128) <= 8

    def test_lowpass_coefficients_invalid(self):
        with pytest.raises(BenchmarkError):
            workloads.lowpass_coefficients(1)

    def test_random_points_shape(self, rng):
        points = workloads.random_points(rng, 6, 3)
        assert points.shape == (6, 3)


class TestBenchmarkContracts:
    # Note: the parameter is called "kernel" (not "benchmark") to avoid
    # clashing with the pytest-benchmark fixture of the same name.
    @pytest.mark.parametrize("kernel", ALL_BENCHMARKS, ids=lambda b: b.name)
    def test_generate_inputs_is_reproducible(self, kernel):
        first = kernel.generate_inputs(np.random.default_rng(7))
        second = kernel.generate_inputs(np.random.default_rng(7))
        assert set(first) == set(second)
        for key in first:
            np.testing.assert_array_equal(first[key], second[key])

    @pytest.mark.parametrize("kernel", ALL_BENCHMARKS, ids=lambda b: b.name)
    def test_execute_produces_flat_integer_outputs(self, kernel):
        inputs = kernel.generate_inputs(np.random.default_rng(0))
        run = kernel.execute(_precise_context(), inputs)
        assert run.outputs.ndim == 1
        assert run.outputs.size > 0
        assert np.issubdtype(run.outputs.dtype, np.integer)

    @pytest.mark.parametrize("kernel", ALL_BENCHMARKS, ids=lambda b: b.name)
    def test_declares_variables_and_widths(self, kernel):
        assert kernel.num_variables >= 2
        assert kernel.add_width in (8, 16)
        assert kernel.mul_width in (8, 16, 32)
        assert kernel.name
        assert kernel.describe()

    @pytest.mark.parametrize("kernel", ALL_BENCHMARKS, ids=lambda b: b.name)
    def test_missing_inputs_raise(self, kernel):
        with pytest.raises(BenchmarkError):
            kernel.execute(_precise_context(), {})

    @pytest.mark.parametrize("kernel", ALL_BENCHMARKS, ids=lambda b: b.name)
    def test_operations_are_counted(self, kernel):
        context = _precise_context()
        kernel.execute(context, kernel.generate_inputs(np.random.default_rng(0)))
        assert context.profile.total_operations > 0


class TestMatMul:
    def test_matches_numpy_matmul(self):
        benchmark = MatMulBenchmark(rows=6, inner=4, cols=5)
        inputs = benchmark.generate_inputs(np.random.default_rng(3))
        run = benchmark.execute(_precise_context(), inputs)
        expected = (inputs["a"] @ inputs["b"]).ravel()
        np.testing.assert_array_equal(run.outputs, expected)

    def test_operation_counts(self):
        benchmark = MatMulBenchmark(rows=3, inner=4, cols=5)
        context = _precise_context()
        benchmark.execute(context, benchmark.generate_inputs(np.random.default_rng(0)))
        assert context.profile.count("mul") == 3 * 4 * 5
        assert context.profile.count("add") == 3 * 4 * 5

    def test_paper_configuration_sizes(self):
        small = MatMulBenchmark(rows=10, inner=10, cols=10)
        large = MatMulBenchmark(rows=50, inner=50, cols=50)
        assert small.name == "matmul_10x10"
        assert large.name == "matmul_50x50"

    def test_shape_validation(self):
        benchmark = MatMulBenchmark(rows=3, inner=3, cols=3)
        with pytest.raises(BenchmarkError):
            benchmark.run(_precise_context(), {"a": np.zeros((2, 2), dtype=np.int64),
                                                "b": np.zeros((3, 3), dtype=np.int64)})

    def test_invalid_dimensions_raise(self):
        with pytest.raises(BenchmarkError):
            MatMulBenchmark(rows=0)
        with pytest.raises(BenchmarkError):
            MatMulBenchmark(value_bits=12)


class TestFir:
    def test_matches_reference_convolution(self):
        benchmark = FirBenchmark(num_samples=30, num_taps=5)
        inputs = benchmark.generate_inputs(np.random.default_rng(5))
        run = benchmark.execute(_precise_context(), inputs)
        padded = np.concatenate([np.zeros(4, dtype=np.int64), inputs["x"]])
        expected = np.array([
            sum(int(inputs["h"][t]) * int(padded[n + 4 - t]) for t in range(5))
            for n in range(30)
        ])
        np.testing.assert_array_equal(run.outputs, expected)

    def test_operation_counts(self):
        benchmark = FirBenchmark(num_samples=25, num_taps=8)
        context = _precise_context()
        benchmark.execute(context, benchmark.generate_inputs(np.random.default_rng(0)))
        assert context.profile.count("mul") == 25 * 8
        assert context.profile.count("add") == 25 * 8

    def test_output_length_matches_samples(self):
        benchmark = FirBenchmark(num_samples=100)
        run = benchmark.execute(_precise_context(),
                                benchmark.generate_inputs(np.random.default_rng(0)))
        assert run.outputs.shape == (100,)

    def test_low_pass_attenuates_alternating_signal(self):
        benchmark = FirBenchmark(num_samples=64, num_taps=16)
        taps = workloads.lowpass_coefficients(16)
        constant = {"x": np.full(64, 100, dtype=np.int64), "h": taps}
        alternating = {"x": np.array([100 if i % 2 == 0 else -100 for i in range(64)],
                                     dtype=np.int64), "h": taps}
        dc_output = benchmark.execute(_precise_context(), constant).outputs
        ac_output = benchmark.execute(_precise_context(), alternating).outputs
        # Steady-state: low-pass passes DC and attenuates the Nyquist tone.
        assert np.abs(dc_output[32:]).mean() > 5 * np.abs(ac_output[32:]).mean()

    def test_invalid_parameters_raise(self):
        with pytest.raises(BenchmarkError):
            FirBenchmark(num_samples=0)
        with pytest.raises(BenchmarkError):
            FirBenchmark(num_taps=1)


class TestOtherKernels:
    def test_convolution_matches_reference(self):
        benchmark = Convolution2DBenchmark(height=6, width=6)
        inputs = benchmark.generate_inputs(np.random.default_rng(11))
        run = benchmark.execute(_precise_context(), inputs)
        image, kernel = inputs["image"], inputs["kernel"]
        expected = np.zeros((4, 4), dtype=np.int64)
        for i in range(4):
            for j in range(4):
                expected[i, j] = int(np.sum(image[i:i + 3, j:j + 3] * kernel))
        np.testing.assert_array_equal(run.outputs, expected.ravel())

    def test_dct_of_constant_block_concentrates_energy_in_dc(self):
        benchmark = DctBenchmark(block_size=4, num_blocks=1)
        coeff = benchmark.generate_inputs(np.random.default_rng(0))["coeff"]
        block = np.full((1, 4, 4), 64, dtype=np.int64)
        run = benchmark.execute(_precise_context(), {"block": block, "coeff": coeff})
        outputs = run.outputs.reshape(4, 4)
        dc = abs(int(outputs[0, 0]))
        others = np.abs(outputs).sum() - dc
        assert dc > others

    def test_sobel_flat_image_has_zero_gradient(self):
        benchmark = SobelBenchmark(height=8, width=8)
        flat = {"image": np.full((8, 8), 77, dtype=np.int64)}
        run = benchmark.execute(_precise_context(), flat)
        assert int(np.abs(run.outputs).sum()) == 0

    def test_sobel_vertical_edge_detected(self):
        benchmark = SobelBenchmark(height=8, width=8)
        image = np.zeros((8, 8), dtype=np.int64)
        image[:, 4:] = 200
        run = benchmark.execute(_precise_context(), {"image": image})
        assert int(np.abs(run.outputs).max()) > 0

    def test_dotproduct_matches_numpy(self):
        benchmark = DotProductBenchmark(length=32)
        inputs = benchmark.generate_inputs(np.random.default_rng(2))
        run = benchmark.execute(_precise_context(), inputs)
        assert int(run.outputs[0]) == int(np.dot(inputs["u"], inputs["v"]))

    def test_kmeans_distances_match_numpy(self):
        benchmark = KMeansAssignBenchmark(num_points=8, num_centroids=3, dimensions=4)
        inputs = benchmark.generate_inputs(np.random.default_rng(9))
        run = benchmark.execute(_precise_context(), inputs)
        points, centroids = inputs["points"], inputs["centroids"]
        expected = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_array_equal(run.outputs, expected.ravel())


class TestRegistry:
    def test_available_contains_all_kernels(self):
        names = available()
        for expected in ("matmul", "fir", "conv2d", "dct", "sobel", "dotproduct", "kmeans"):
            assert expected in names

    def test_create_forwards_kwargs(self):
        benchmark = create("matmul", rows=7, inner=7, cols=7)
        assert benchmark.rows == 7

    def test_create_unknown_raises(self):
        with pytest.raises(UnknownBenchmarkError):
            create("not-a-benchmark")

    def test_register_duplicate_raises(self):
        with pytest.raises(ConfigurationError):
            register("matmul", MatMulBenchmark)

    def test_register_empty_name_raises(self):
        with pytest.raises(ConfigurationError):
            register("", MatMulBenchmark)

    def test_paper_benchmarks_are_the_four_table3_configurations(self):
        configured = paper_benchmarks()
        assert set(configured) == {"matmul_10x10", "matmul_50x50", "fir_100", "fir_200"}
        assert configured["matmul_50x50"].rows == 50
        assert configured["fir_200"].num_samples == 200
