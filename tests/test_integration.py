"""End-to-end integration tests reproducing the paper's qualitative results.

These tests run short explorations on the paper's benchmarks and check the
*shape* of the results the paper reports: the agent respects the accuracy
constraint while pushing power and time reductions, Matrix Multiplication
learns (average reward improves towards +1), and the exploration reproduces
the structure of Table III.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents import QLearningAgent, RandomAgent
from repro.agents.schedules import LinearDecayEpsilon
from repro.analysis import improvement_ratio, reward_curve, trace_trends
from repro.benchmarks import FirBenchmark, MatMulBenchmark
from repro.dse import AxcDseEnv, Explorer, pareto_front


def _explore(benchmark, steps, seed=0, decay=400):
    environment = AxcDseEnv(benchmark, evaluation_seed=seed)
    agent = QLearningAgent(
        num_actions=environment.action_space.n,
        epsilon=LinearDecayEpsilon(start=1.0, end=0.05, decay_steps=decay),
        seed=seed,
    )
    return environment, Explorer(environment, agent, max_steps=steps).run(seed=seed)


class TestMatMulExploration:
    @pytest.fixture(scope="class")
    def matmul_run(self):
        return _explore(MatMulBenchmark(rows=10, inner=10, cols=10), steps=1500)

    def test_agent_learns_to_collect_positive_reward(self, matmul_run):
        _, result = matmul_run
        curve = reward_curve(result, window=100)
        # Early exploration is noisy/negative; late behaviour approaches the
        # +1 per step of Algorithm 1's "good configuration" reward.
        assert improvement_ratio(curve) > 0
        assert float(np.mean(curve.averages[-3:])) > 0.5

    def test_solution_respects_the_accuracy_constraint(self, matmul_run):
        environment, result = matmul_run
        assert result.solution.deltas.accuracy <= environment.thresholds.accuracy

    def test_solution_reaches_the_power_and_time_thresholds(self, matmul_run):
        environment, result = matmul_run
        assert result.solution.deltas.power_mw >= environment.thresholds.power_mw
        assert result.solution.deltas.time_ns >= environment.thresholds.time_ns

    def test_exploration_observes_wide_objective_ranges(self, matmul_run):
        _, result = matmul_run
        power = result.power_summary()
        time = result.time_summary()
        assert power.maximum > power.minimum
        assert time.maximum > time.minimum
        # The solution sits between the observed extremes (Table III shape).
        assert power.minimum <= power.solution <= power.maximum
        assert time.minimum <= time.solution <= time.maximum

    def test_solution_selects_an_aggressive_multiplier(self, matmul_run):
        environment, result = matmul_run
        # The paper's MatMul solutions pick mid-to-aggressive multipliers
        # (L93 / 17MJ); the reproduction should land in the same half.
        assert result.solution.point.multiplier_index >= environment.design_space.num_multipliers // 2

    def test_pareto_front_is_non_trivial(self, matmul_run):
        _, result = matmul_run
        front = pareto_front(result.records)
        assert 1 <= len(front) < result.num_steps

    def test_power_and_time_trend_upwards(self, matmul_run):
        _, result = matmul_run
        trends = trace_trends(result)
        assert trends["power_mw"].slope > 0
        assert trends["time_ns"].slope > 0


class TestFirExploration:
    @pytest.fixture(scope="class")
    def fir_run(self):
        return _explore(FirBenchmark(num_samples=100), steps=800)

    def test_exploration_stays_mostly_feasible(self, fir_run):
        _, result = fir_run
        assert result.feasible_fraction() > 0.5

    def test_a_feasible_configuration_with_gains_exists(self, fir_run):
        environment, result = fir_run
        best = result.best_feasible()
        assert best is not None
        assert best.deltas.power_mw > 0

    def test_fir_learns_less_cleanly_than_matmul(self, fir_run):
        # The paper's Figure 4 shows FIR's average reward not improving the
        # way MatMul's does; the reproduction keeps that qualitative gap.
        _, fir_result = fir_run
        _, matmul_result = _explore(MatMulBenchmark(rows=10, inner=10, cols=10), steps=800)
        fir_late = float(np.mean(reward_curve(fir_result, window=100).averages[-3:]))
        matmul_late = float(np.mean(reward_curve(matmul_result, window=100).averages[-3:]))
        assert matmul_late > fir_late


class TestAgentComparison:
    def test_qlearning_beats_random_on_late_reward(self):
        benchmark = MatMulBenchmark(rows=6, inner=6, cols=6)
        environment = AxcDseEnv(benchmark, evaluation_seed=0)
        q_agent = QLearningAgent(
            num_actions=environment.action_space.n,
            epsilon=LinearDecayEpsilon(start=1.0, end=0.05, decay_steps=300),
            seed=0,
        )
        q_result = Explorer(environment, q_agent, max_steps=900).run(seed=0)

        random_env = AxcDseEnv(benchmark, evaluation_seed=0)
        random_agent = RandomAgent(num_actions=random_env.action_space.n, seed=0)
        random_result = Explorer(random_env, random_agent, max_steps=900).run(seed=0)

        q_late = float(np.mean(reward_curve(q_result, window=100).averages[-3:]))
        random_late = float(np.mean(reward_curve(random_result, window=100).averages[-3:]))
        assert q_late > random_late
