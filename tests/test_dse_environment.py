"""Tests for the AxcDseEnv RL environment and the exploration driver."""

from __future__ import annotations

import numpy as np
import pytest

import repro.gymlite as gym
from repro.agents import QLearningAgent, RandomAgent
from repro.dse import AxcDseEnv, DesignPoint, Explorer, explore
from repro.errors import ConfigurationError, ExplorationError, InvalidAction, ResetNeeded


class TestEnvironmentContract:
    def test_observation_and_action_spaces(self, matmul_env):
        assert matmul_env.action_space.n == 4 + matmul_env.design_space.num_variables
        observation, info = matmul_env.reset(seed=0)
        assert matmul_env.observation_space.contains(observation)
        assert "design_point" in info and "deltas" in info

    def test_reset_starts_at_initial_point(self, matmul_env):
        observation, _ = matmul_env.reset(seed=0)
        assert observation["adder"] == 1
        assert observation["multiplier"] == 1
        assert observation["variables"].sum() == 0
        np.testing.assert_allclose(observation["deltas"], np.zeros(3))

    def test_reset_with_random_start(self, matmul_env):
        observation, _ = matmul_env.reset(seed=5, options={"random_start": True})
        assert matmul_env.observation_space.contains(observation)

    def test_reset_with_explicit_point(self, matmul_env):
        point = DesignPoint(3, 2, (True, False, True))
        _, info = matmul_env.reset(options={"design_point": point})
        assert info["design_point"] == point

    def test_step_before_reset_raises(self, small_matmul):
        env = AxcDseEnv(small_matmul)
        with pytest.raises(ResetNeeded):
            env.step(0)

    def test_invalid_action_raises(self, matmul_env):
        matmul_env.reset(seed=0)
        with pytest.raises(InvalidAction):
            matmul_env.step(matmul_env.action_space.n)

    def test_step_returns_five_tuple(self, matmul_env):
        matmul_env.reset(seed=0)
        observation, reward, terminated, truncated, info = matmul_env.step(0)
        assert matmul_env.observation_space.contains(observation)
        assert isinstance(reward, float)
        assert isinstance(terminated, bool)
        assert truncated is False
        assert info["cumulative_reward"] == reward

    def test_directional_actions_move_the_knobs(self, matmul_env):
        matmul_env.reset(seed=0)
        observation, *_ = matmul_env.step(0)  # adder up
        assert observation["adder"] == 2
        observation, *_ = matmul_env.step(2)  # multiplier up
        assert observation["multiplier"] == 2
        observation, *_ = matmul_env.step(4)  # toggle first variable
        assert observation["variables"][0] == 1
        observation, *_ = matmul_env.step(4)  # toggle it back
        assert observation["variables"][0] == 0

    def test_knobs_are_clamped_at_boundaries(self, matmul_env):
        matmul_env.reset(seed=0)
        observation, *_ = matmul_env.step(1)  # adder down from 1 stays at 1
        assert observation["adder"] == 1
        observation, *_ = matmul_env.step(3)  # multiplier down from 1 stays at 1
        assert observation["multiplier"] == 1

    def test_cumulative_reward_accumulates(self, matmul_env):
        matmul_env.reset(seed=0)
        total = 0.0
        for action in (0, 2, 4, 5):
            _, reward, *_ , info = matmul_env.step(action)
            total += reward
            assert info["cumulative_reward"] == pytest.approx(total)
        assert matmul_env.cumulative_reward == pytest.approx(total)

    def test_observation_deltas_match_info(self, matmul_env):
        matmul_env.reset(seed=0)
        observation, _, _, _, info = matmul_env.step(4)
        deltas = info["deltas"]
        np.testing.assert_allclose(
            observation["deltas"], [deltas.accuracy, deltas.power_mw, deltas.time_ns]
        )

    def test_compact_action_scheme(self, small_matmul):
        env = AxcDseEnv(small_matmul, action_scheme="compact")
        assert env.action_space.n == 3
        env.reset(seed=0)
        for action in (0, 1, 2):
            observation, *_ = env.step(action)
            assert env.observation_space.contains(observation)

    def test_invalid_action_scheme_raises(self, small_matmul):
        with pytest.raises(ConfigurationError):
            AxcDseEnv(small_matmul, action_scheme="nope")

    def test_invalid_max_reward_raises(self, small_matmul):
        with pytest.raises(ConfigurationError):
            AxcDseEnv(small_matmul, max_cumulative_reward=0)

    def test_render_mentions_the_point(self, matmul_env):
        assert "not reset" in matmul_env.render()
        matmul_env.reset(seed=0)
        assert "adder=1" in matmul_env.render()

    def test_thresholds_follow_the_paper_defaults(self, matmul_env):
        evaluator = matmul_env.evaluator
        assert matmul_env.thresholds.power_mw == pytest.approx(
            0.5 * evaluator.precise_cost.power_mw
        )
        assert matmul_env.thresholds.accuracy == pytest.approx(
            0.4 * float(np.mean(np.abs(evaluator.precise_outputs)))
        )

    def test_gym_registry_construction(self, small_matmul):
        env = gym.make("repro/AxcDse-v0", benchmark=small_matmul, max_episode_steps=5)
        env.reset(seed=0)
        truncated = False
        for _ in range(5):
            *_, truncated, _ = env.step(0)
        assert truncated

    def test_reproducible_with_same_seed(self, small_matmul):
        def run(seed):
            env = AxcDseEnv(small_matmul, action_scheme="compact")
            env.reset(seed=seed)
            trace = []
            for _ in range(20):
                _, reward, *_ , info = env.step(2)
                trace.append((info["design_point"].key(), reward))
            return trace

        assert run(11) == run(11)
        assert run(11) != run(12)


class TestExplorer:
    def test_exploration_records_every_step(self, matmul_env, quick_agent):
        result = Explorer(matmul_env, quick_agent, max_steps=50).run(seed=0)
        assert result.num_steps <= 51
        assert result.records[0].step == 0
        assert result.records[0].action is None
        assert all(record.action is not None for record in result.records[1:])
        assert result.benchmark_name == matmul_env.evaluator.benchmark.name
        assert result.agent_name == "q-learning"

    def test_cumulative_reward_is_consistent(self, matmul_env, quick_agent):
        result = Explorer(matmul_env, quick_agent, max_steps=50).run(seed=0)
        partial = np.cumsum(result.reward_series())
        np.testing.assert_allclose(partial, result.cumulative_reward_series())

    def test_explore_convenience_function(self, matmul_env):
        agent = RandomAgent(num_actions=matmul_env.action_space.n, seed=0)
        result = explore(matmul_env, agent, max_steps=20, seed=0)
        assert result.num_steps <= 21
        assert result.metadata["max_steps"] == 20

    def test_invalid_max_steps_raises(self, matmul_env, quick_agent):
        with pytest.raises(ExplorationError):
            Explorer(matmul_env, quick_agent, max_steps=0)

    def test_deterministic_given_seeds(self, small_matmul):
        def run():
            env = AxcDseEnv(small_matmul)
            agent = QLearningAgent(num_actions=env.action_space.n, epsilon=0.3, seed=7)
            return explore(env, agent, max_steps=60, seed=3).cumulative_reward_series()

        np.testing.assert_allclose(run(), run())

    def test_metadata_reports_evaluations(self, matmul_env, quick_agent):
        result = Explorer(matmul_env, quick_agent, max_steps=30).run(seed=0)
        assert result.metadata["evaluations"] == matmul_env.evaluator.cache_size
        assert result.metadata["design_space_size"] == matmul_env.design_space.size
