"""Tests for exhaustive design-space sweeps and batched evaluation."""

from __future__ import annotations

import pytest

from repro.benchmarks import DotProductBenchmark
from repro.dse import Campaign, Evaluator, ParetoArchive, run_sweep
from repro.dse.sweep import SweepChunk, execute_sweep_job
from repro.errors import ConfigurationError, DesignSpaceError, ExplorationError
from repro.runtime import (
    AgentSpec,
    EvaluationStore,
    ProcessExecutor,
    SerialExecutor,
    SweepJob,
    expand_sweep_jobs,
)


@pytest.fixture
def tiny_benchmarks():
    return {"dot": DotProductBenchmark(length=8)}


def _front_identity(front):
    return [(record.point.key(), record.deltas) for record in front]


class TestDesignSpaceIndexing:
    def test_point_at_matches_enumerate(self, matmul_evaluator):
        space = matmul_evaluator.design_space
        assert [space.point_at(i) for i in range(space.size)] == list(space.enumerate())

    def test_point_at_bounds(self, matmul_evaluator):
        space = matmul_evaluator.design_space
        with pytest.raises(DesignSpaceError):
            space.point_at(-1)
        with pytest.raises(DesignSpaceError):
            space.point_at(space.size)

    def test_iter_range_clamps_to_space(self, matmul_evaluator):
        space = matmul_evaluator.design_space
        tail = list(space.iter_range(space.size - 3, space.size + 100))
        assert tail == list(space.enumerate())[-3:]
        with pytest.raises(DesignSpaceError):
            list(space.iter_range(-1, 5))


class TestEvaluateMany:
    def test_matches_single_evaluations(self, matmul_evaluator):
        space = matmul_evaluator.design_space
        points = [space.point_at(i) for i in (0, 5, 11)]
        batch = matmul_evaluator.evaluate_many(points)
        assert [record is matmul_evaluator.evaluate(point)
                for record, point in zip(batch, points)] == [True] * 3

    def test_index_range_covers_the_slice(self, matmul_evaluator):
        records = matmul_evaluator.evaluate_index_range(3, 7)
        space = matmul_evaluator.design_space
        assert [record.point for record in records] == [space.point_at(i) for i in range(3, 7)]


class TestEvaluatorReuse:
    def test_use_store_redirects_evaluations(self, small_matmul):
        first, second = EvaluationStore(), EvaluationStore()
        evaluator = Evaluator(small_matmul, seed=0, store=first, store_outputs=False)
        evaluator.evaluate(evaluator.design_space.initial_point())
        evaluator.use_store(second)
        assert evaluator.cache_size == 0  # served tracking is per-store
        evaluator.evaluate(evaluator.design_space.most_aggressive_point())
        assert len(first) == 1 and len(second) == 1

    def test_chunks_share_one_evaluator_per_context(self, tiny_benchmarks):
        from repro.dse import sweep as sweep_module

        sweep_module._EVALUATOR_CACHE.clear()
        run_sweep(tiny_benchmarks, store=EvaluationStore(), chunk_size=48)
        assert len(sweep_module._EVALUATOR_CACHE) == 1  # six chunks, one baseline
        # A second sweep of the same context reuses the cached baseline and
        # still lands its evaluations in the new store.
        store = EvaluationStore()
        (result,) = run_sweep(tiny_benchmarks, store=store, chunk_size=96)
        assert len(sweep_module._EVALUATOR_CACHE) == 1
        assert len(store) == result.space_size


class TestSweepJobs:
    def test_expansion_chunks_cover_the_space(self, tiny_benchmarks):
        jobs = expand_sweep_jobs(tiny_benchmarks, seeds=(0, 1), chunk_size=100)
        assert all(isinstance(job, SweepJob) for job in jobs)
        by_seed = {}
        for job in jobs:
            by_seed.setdefault(job.seed, []).append((job.start, job.stop))
        assert set(by_seed) == {0, 1}
        for ranges in by_seed.values():
            assert ranges[0][0] == 0
            assert all(prev[1] == nxt[0] for prev, nxt in zip(ranges, ranges[1:]))
            assert ranges[-1][1] == 288  # restricted dotproduct space

    def test_expansion_validation(self, tiny_benchmarks):
        with pytest.raises(ExplorationError):
            expand_sweep_jobs({})
        with pytest.raises(ExplorationError):
            expand_sweep_jobs(tiny_benchmarks, seeds=())
        with pytest.raises(ConfigurationError):
            expand_sweep_jobs(tiny_benchmarks, chunk_size=0)
        with pytest.raises(ConfigurationError):
            SweepJob("dot", DotProductBenchmark(8), seed=0, start=5, stop=5)

    def test_chunk_execution_returns_local_front(self, tiny_benchmarks):
        job = expand_sweep_jobs(tiny_benchmarks, chunk_size=64)[0]
        store = EvaluationStore()
        chunk = execute_sweep_job(job, store=store)
        assert isinstance(chunk, SweepChunk)
        assert chunk.evaluated == 64 == len(store)
        evaluator = Evaluator(tiny_benchmarks["dot"], seed=0, store=store,
                              store_outputs=False)
        expected = ParetoArchive(evaluator.evaluate_index_range(0, 64)).front()
        assert _front_identity(chunk.front) == _front_identity(expected)

    def test_chunk_beyond_space_raises(self, tiny_benchmarks):
        job = SweepJob("dot", tiny_benchmarks["dot"], seed=0, start=10_000, stop=10_001)
        with pytest.raises(ExplorationError):
            execute_sweep_job(job)


class TestRunSweep:
    def test_true_front_matches_exhaustive_archive(self, tiny_benchmarks):
        store = EvaluationStore()
        (result,) = run_sweep(tiny_benchmarks, store=store, chunk_size=50)
        assert result.evaluations == result.space_size == 288 == len(store)
        evaluator = Evaluator(tiny_benchmarks["dot"], seed=0, store=store,
                              store_outputs=False)
        expected = ParetoArchive(
            evaluator.evaluate_index_range(0, evaluator.design_space.size)
        ).front()
        assert _front_identity(result.front) == _front_identity(expected)
        assert result.front_size == len(expected)
        assert 0 < len(result.feasible_front()) <= result.front_size
        assert result.hypervolume() > 0.0

    def test_serial_and_process_executors_are_identical(self, tiny_benchmarks):
        serial_store = EvaluationStore()
        (serial,) = run_sweep(tiny_benchmarks, executor=SerialExecutor(),
                              store=serial_store, chunk_size=48)
        process_store = EvaluationStore()
        (process,) = run_sweep(tiny_benchmarks, executor=ProcessExecutor(n_jobs=2),
                               store=process_store, chunk_size=48)
        assert _front_identity(serial.front) == _front_identity(process.front)
        assert serial.evaluations == process.evaluations
        assert sorted(serial_store.keys()) == sorted(process_store.keys())
        for key in serial_store.keys():
            left, right = serial_store.get(key), process_store.get(key)
            assert left.deltas == right.deltas
            assert left.approx_cost == right.approx_cost

    def test_store_round_trip_warm_starts_the_next_sweep(self, tiny_benchmarks, tmp_path):
        path = tmp_path / "sweep.sqlite"
        with EvaluationStore(path=path) as store:
            (cold,) = run_sweep(tiny_benchmarks, store=store, chunk_size=96)
        reloaded = EvaluationStore(path=path)
        assert len(reloaded) == cold.space_size
        (warm,) = run_sweep(tiny_benchmarks, store=reloaded, chunk_size=96)
        assert _front_identity(warm.front) == _front_identity(cold.front)
        stats = reloaded.stats
        assert stats.hits == cold.space_size  # everything served from disk
        assert stats.misses == 0
        assert stats.upgrades == 0

    def test_failed_chunk_reports_and_raises(self, tiny_benchmarks):
        jobs = expand_sweep_jobs(tiny_benchmarks, chunk_size=300)
        bad = SweepJob("dot", tiny_benchmarks["dot"], seed=0, start=10_000, stop=10_100)
        outcomes = SerialExecutor().run(jobs + [bad], store=EvaluationStore())
        assert [outcome.ok for outcome in outcomes] == [True, False]
        assert "starts beyond the space" in outcomes[-1].error

    def test_multiple_seeds_produce_one_result_each(self, tiny_benchmarks):
        results = run_sweep(tiny_benchmarks, seeds=(0, 1), chunk_size=150)
        assert [(r.benchmark_label, r.seed) for r in results] == [("dot", 0), ("dot", 1)]


class TestFrontQualityIntegration:
    def test_judge_scores_agent_trace_against_true_front(self, tiny_benchmarks):
        store = EvaluationStore()
        (truth,) = run_sweep(tiny_benchmarks, store=store, chunk_size=288)
        campaign = Campaign(tiny_benchmarks, AgentSpec("q-learning"), max_steps=60,
                            seeds=(0,), store=store)
        entries = campaign.run()
        quality = truth.judge(entries[0].result.records)
        assert 0.0 <= quality.coverage <= 1.0
        assert quality.reference_size == truth.front_size
        # The exhaustive front is the ground truth: its own judgement is perfect.
        assert truth.judge(truth.front).coverage == 1.0

    def test_campaign_summarize_with_reference_fronts(self, tiny_benchmarks):
        store = EvaluationStore()
        (truth,) = run_sweep(tiny_benchmarks, store=store, chunk_size=288)
        campaign = Campaign(tiny_benchmarks, AgentSpec("q-learning"), max_steps=50,
                            seeds=(0, 1), store=store)
        entries = campaign.run()
        plain = Campaign.summarize(entries)["dot"]
        assert plain.mean_front_size >= 1.0
        assert plain.mean_front_coverage is None
        assert plain.mean_hypervolume_ratio is None
        scored = Campaign.summarize(entries, reference_fronts={"dot": truth.front})["dot"]
        assert scored.mean_front_coverage is not None
        assert 0.0 <= scored.mean_front_coverage <= 1.0
        assert scored.mean_hypervolume_ratio is not None
