"""Tests for exploration campaigns and the CSV / JSON export helpers."""

from __future__ import annotations

import csv
import json

import numpy as np
import pytest

from repro.agents import QLearningAgent, RandomAgent
from repro.analysis import result_to_dict, trace_rows, write_result_json, write_trace_csv
from repro.benchmarks import DotProductBenchmark, MatMulBenchmark
from repro.dse import Campaign, explore
from repro.errors import AnalysisError, ExplorationError


def _agent_factory(environment, seed):
    return QLearningAgent(num_actions=environment.action_space.n, epsilon=0.3, seed=seed)


@pytest.fixture(scope="module")
def small_campaign_entries():
    campaign = Campaign(
        benchmarks={
            "dot": DotProductBenchmark(length=16),
            "matmul": MatMulBenchmark(rows=3, inner=3, cols=3),
        },
        agent_factory=_agent_factory,
        max_steps=40,
        seeds=(0, 1),
    )
    return campaign.run()


@pytest.fixture
def exploration_result(matmul_env):
    agent = RandomAgent(num_actions=matmul_env.action_space.n, seed=0)
    return explore(matmul_env, agent, max_steps=30, seed=0)


class TestCampaign:
    def test_runs_every_benchmark_and_seed(self, small_campaign_entries):
        labels = {(entry.benchmark_label, entry.seed) for entry in small_campaign_entries}
        assert labels == {("dot", 0), ("dot", 1), ("matmul", 0), ("matmul", 1)}

    def test_entries_carry_full_results(self, small_campaign_entries):
        for entry in small_campaign_entries:
            assert entry.result.num_steps >= 1
            assert entry.result.agent_name == "q-learning"

    def test_summary_aggregates_per_benchmark(self, small_campaign_entries):
        summaries = Campaign.summarize(small_campaign_entries)
        assert set(summaries) == {"dot", "matmul"}
        for summary in summaries.values():
            assert summary.runs == 2
            assert 0.0 <= summary.mean_feasible_fraction <= 1.0
            assert np.isfinite(summary.mean_solution_power_mw)

    def test_validation(self):
        with pytest.raises(ExplorationError):
            Campaign(benchmarks={}, agent_factory=_agent_factory)
        with pytest.raises(ExplorationError):
            Campaign(benchmarks={"dot": DotProductBenchmark(8)}, agent_factory=_agent_factory,
                     seeds=())
        with pytest.raises(ExplorationError):
            Campaign(benchmarks={"dot": DotProductBenchmark(8)}, agent_factory=_agent_factory,
                     max_steps=0)

    def test_env_kwargs_forwarded(self):
        campaign = Campaign(
            benchmarks={"dot": DotProductBenchmark(length=8)},
            agent_factory=_agent_factory,
            max_steps=10,
            seeds=(0,),
            env_kwargs={"accuracy_factor": 0.1},
        )
        entries = campaign.run()
        # accth = 0.1 x mean output instead of the default 0.4 x.
        assert entries[0].result.thresholds.accuracy > 0


class TestExport:
    def test_trace_rows_match_records(self, exploration_result):
        rows = trace_rows(exploration_result)
        assert len(rows) == exploration_result.num_steps
        assert rows[0]["step"] == 0
        assert rows[0]["action"] is None
        assert set(rows[0]) >= {"delta_power_mw", "delta_time_ns", "delta_accuracy", "reward"}

    def test_write_trace_csv_round_trip(self, exploration_result, tmp_path):
        path = write_trace_csv(exploration_result, tmp_path / "trace.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == exploration_result.num_steps
        assert float(rows[-1]["cumulative_reward"]) == pytest.approx(
            exploration_result.records[-1].cumulative_reward
        )

    def test_result_to_dict_is_json_serialisable(self, exploration_result):
        payload = result_to_dict(exploration_result)
        encoded = json.dumps(payload)
        decoded = json.loads(encoded)
        assert decoded["steps"] == exploration_result.num_steps
        assert decoded["benchmark"] == exploration_result.benchmark_name
        assert "power_mw" in decoded and "solution" in decoded["power_mw"]

    def test_write_result_json(self, exploration_result, tmp_path):
        path = write_result_json(exploration_result, tmp_path / "result.json")
        decoded = json.loads(path.read_text())
        assert decoded["agent"] == "random"
        assert decoded["thresholds"]["power_mw"] == pytest.approx(
            exploration_result.thresholds.power_mw
        )

    def test_write_result_json_negative_indent_raises(self, exploration_result, tmp_path):
        with pytest.raises(AnalysisError):
            write_result_json(exploration_result, tmp_path / "result.json", indent=-1)
