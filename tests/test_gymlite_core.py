"""Tests for the gymlite Env / Wrapper base classes, registry and seeding."""

from __future__ import annotations

import numpy as np
import pytest

import repro.gymlite as gym
from repro.errors import ConfigurationError
from repro.gymlite import spaces
from repro.gymlite.seeding import np_random


class CountingEnv(gym.Env):
    """A tiny environment that terminates after ``limit`` steps."""

    def __init__(self, limit: int = 5):
        self.limit = limit
        self.count = 0
        self.observation_space = spaces.Discrete(limit + 1)
        self.action_space = spaces.Discrete(2)

    def reset(self, *, seed=None, options=None):
        super().reset(seed=seed)
        self.count = 0
        return self.count, {}

    def step(self, action):
        self.count += 1
        terminated = self.count >= self.limit
        return self.count, float(action), terminated, False, {}


class TestSeeding:
    def test_same_seed_same_stream(self):
        first, _ = np_random(7)
        second, _ = np_random(7)
        assert first.integers(0, 1000, 10).tolist() == second.integers(0, 1000, 10).tolist()

    def test_none_seed_returns_used_seed(self):
        generator, seed = np_random(None)
        assert isinstance(generator, np.random.Generator)
        assert seed >= 0

    def test_negative_seed_raises(self):
        with pytest.raises(ConfigurationError):
            np_random(-1)

    def test_non_integer_seed_raises(self):
        with pytest.raises(ConfigurationError):
            np_random(1.5)


class TestEnv:
    def test_reset_seeds_np_random(self):
        env = CountingEnv()
        env.reset(seed=3)
        first = env.np_random.integers(0, 100, 5).tolist()
        env.reset(seed=3)
        second = env.np_random.integers(0, 100, 5).tolist()
        assert first == second

    def test_step_five_tuple(self):
        env = CountingEnv(limit=2)
        env.reset()
        observation, reward, terminated, truncated, info = env.step(1)
        assert observation == 1
        assert reward == 1.0
        assert terminated is False
        assert truncated is False
        assert info == {}

    def test_context_manager_closes(self):
        with CountingEnv() as env:
            env.reset()
        # close() is a no-op but the protocol must not raise.

    def test_unwrapped_is_self(self):
        env = CountingEnv()
        assert env.unwrapped is env


class TestWrappers:
    def test_time_limit_truncates(self):
        env = gym.TimeLimit(CountingEnv(limit=100), max_episode_steps=3)
        env.reset()
        results = [env.step(0) for _ in range(3)]
        assert results[-1][3] is True  # truncated on the third step
        assert results[0][3] is False

    def test_time_limit_requires_reset(self):
        env = gym.TimeLimit(CountingEnv(), max_episode_steps=3)
        from repro.errors import ResetNeeded

        with pytest.raises(ResetNeeded):
            env.step(0)

    def test_time_limit_rejects_bad_limit(self):
        with pytest.raises(ConfigurationError):
            gym.TimeLimit(CountingEnv(), max_episode_steps=0)

    def test_order_enforcing(self):
        from repro.errors import ResetNeeded

        env = gym.OrderEnforcing(CountingEnv())
        with pytest.raises(ResetNeeded):
            env.step(0)
        env.reset()
        env.step(0)

    def test_record_episode_statistics(self):
        env = gym.RecordEpisodeStatistics(CountingEnv(limit=3))
        env.reset()
        info = {}
        for _ in range(3):
            _, _, terminated, _, info = env.step(1)
        assert terminated
        assert info["episode"]["l"] == 3
        assert info["episode"]["r"] == pytest.approx(3.0)
        assert list(env.return_queue) == [3.0]

    def test_wrapper_delegates_attributes(self):
        env = gym.TimeLimit(CountingEnv(limit=7), max_episode_steps=10)
        assert env.limit == 7
        assert env.unwrapped.limit == 7


class TestRegistry:
    def test_register_and_make(self):
        env_id = "tests/Counting-v0"
        if env_id not in gym.registry:
            gym.register(env_id, CountingEnv, max_episode_steps=4, limit=10)
        env = gym.make(env_id)
        env.reset()
        truncated = False
        for _ in range(4):
            *_, truncated, _ = env.step(0)
        assert truncated

    def test_make_kwargs_override(self):
        env_id = "tests/Counting-v1"
        if env_id not in gym.registry:
            gym.register(env_id, CountingEnv, limit=10)
        env = gym.make(env_id, limit=2)
        assert env.limit == 2

    def test_duplicate_registration_raises(self):
        env_id = "tests/Counting-v2"
        if env_id not in gym.registry:
            gym.register(env_id, CountingEnv)
        with pytest.raises(ConfigurationError):
            gym.register(env_id, CountingEnv)

    def test_make_unknown_id_raises(self):
        with pytest.raises(ConfigurationError):
            gym.make("tests/DoesNotExist-v0")

    def test_pprint_registry_lists_ids(self):
        env_id = "tests/Counting-v3"
        if env_id not in gym.registry:
            gym.register(env_id, CountingEnv)
        assert env_id in gym.pprint_registry()

    def test_axc_env_is_registered(self):
        assert "repro/AxcDse-v0" in gym.registry
