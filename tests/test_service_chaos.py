"""Chaos coverage for the evaluation service: faults fire inside the daemon.

The PR-9 fault harness (:mod:`repro.runtime.faults`) is env-guarded, so a
daemon started with ``REPRO_FAULT_PLAN`` drives injected kill/transient/
delay rules into its own evaluation workers — exactly like any other
runtime.  Two scenarios matter:

* **pool-worker kill** — a rule kills a process-pool worker mid-ticket;
  the retry layer salvages, rebuilds the pool and re-dispatches, and the
  client's final report is byte-identical to a fault-free serial run;
* **daemon kill + resume** — a rule kills the daemon process itself
  mid-ticket (serial executor: the worker thread *is* the daemon).  A
  restart with ``--resume`` restores the journaled jobs from the
  checkpoint, re-runs only the unfinished tail, and the resubmitting
  client's report is byte-identical to an uninterrupted run.  Spent
  fault occurrences stay spent across the restart (the marker files
  persist), so the replacement daemon does not die again.
"""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.errors import ServiceError
from repro.experiments.runner import run_experiment
from repro.experiments.spec import ExperimentSpec
from repro.runtime.faults import FaultPlan, FaultRule

from _service_utils import daemon_stats, run_clients, running_daemon, service_env

SPEC_PAYLOAD = {
    "kind": "campaign",
    "benchmarks": ["dotproduct:length=12"],
    "agents": ["random"],
    "seeds": [0, 1, 2, 3],
    "max_steps": 15,
}


@pytest.fixture(scope="module")
def serial_canonical():
    """The fault-free truth every chaos scenario must reproduce."""
    return run_experiment(
        ExperimentSpec.from_dict(SPEC_PAYLOAD)).canonical_json()


def _write_spec(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC_PAYLOAD))
    return path


class TestPoolWorkerKill:
    def test_killed_pool_worker_is_retried_to_an_identical_report(
            self, tmp_path, serial_canonical):
        # The 2nd matching job execution dies inside a pool worker; with
        # --retries 3 the executor rebuilds the pool and re-dispatches.
        plan_env = FaultPlan(rules=(
            FaultRule(action="kill", match="*", after=1, times=1),
        )).install(tmp_path / "faults")
        spec_path = _write_spec(tmp_path)
        socket_path = str(tmp_path / "evald.sock")

        with running_daemon("--socket", socket_path,
                            "--store", str(tmp_path / "evals.sqlite"),
                            "--jobs", "2", "--batch-size", "1",
                            "--retries", "3",
                            env_extra=plan_env) as (daemon, address):
            [result] = run_clients([spec_path], address, tmp_path,
                                   env_extra=plan_env)
            stats = daemon_stats(address)

        assert result["ok"]
        assert result["canonical"] == serial_canonical
        # The harness is visible: the daemon knows which plan it ran under.
        assert stats["fault_plan"] == plan_env["REPRO_FAULT_PLAN"]
        assert stats["tickets"]["failed"] == 0
        assert daemon.wait(timeout=60) == 0

    def test_transient_faults_inside_workers_are_retried(self, tmp_path,
                                                         serial_canonical):
        plan_env = FaultPlan(rules=(
            FaultRule(action="transient", match="*", times=2),
        )).install(tmp_path / "faults")
        spec_path = _write_spec(tmp_path)
        socket_path = str(tmp_path / "evald.sock")

        with running_daemon("--socket", socket_path,
                            "--jobs", "2", "--batch-size", "1",
                            "--retries", "3",
                            env_extra=plan_env) as (_daemon, address):
            [result] = run_clients([spec_path], address, tmp_path,
                                   env_extra=plan_env)

        assert result["ok"]
        assert result["canonical"] == serial_canonical


class TestDaemonKillAndResume:
    def _submit_and_expect_death(self, address, spec_path):
        """Submit; the daemon dies mid-ticket, so waiting must error."""
        from repro.service import ServiceClient

        client = ServiceClient(address)
        spec = ExperimentSpec.from_dict(json.loads(spec_path.read_text()))
        ticket = client.submit(spec)["ticket"]
        with pytest.raises(ServiceError):
            while True:  # the daemon dies before this ever finishes
                status = client.poll(ticket, wait=10)
                assert status["state"] != "done", \
                    "fault plan should have killed the daemon mid-ticket"

    def test_killed_daemon_resumes_from_checkpoint(self, tmp_path,
                                                   serial_canonical):
        # Serial executor: the evaluation thread lives in the daemon
        # process, so a kill rule on the 3rd per-seed job kills the daemon
        # itself after two jobs were journaled.
        plan_env = FaultPlan(rules=(
            FaultRule(action="kill", match="*", after=2, times=1),
        )).install(tmp_path / "faults")
        spec_path = _write_spec(tmp_path)
        store = str(tmp_path / "evals.sqlite")
        socket_path = str(tmp_path / "evald.sock")

        with running_daemon("--socket", socket_path, "--store", store,
                            "--jobs", "1", "--batch-size", "1",
                            env_extra=plan_env) as (daemon, address):
            self._submit_and_expect_death(address, spec_path)
            code = daemon.wait(timeout=60)
        assert code == 23  # the fault rule's exit code: a hard kill

        # The replacement daemon resumes: journaled jobs restore, only the
        # unfinished tail re-runs, and the report is indistinguishable
        # from one produced without the crash.
        with running_daemon("--socket", socket_path, "--store", store,
                            "--jobs", "1", "--batch-size", "1", "--resume",
                            env_extra=plan_env) as (_daemon, address):
            [result] = run_clients([spec_path], address, tmp_path,
                                   env_extra=plan_env)
            stats = daemon_stats(address)

        assert result["ok"]
        assert result["canonical"] == serial_canonical
        assert stats["checkpoint"]["restored"] == 2  # the journaled prefix

    def test_clean_drain_leaves_no_socket_or_tmp_files(self, tmp_path):
        # The CI service job's invariant, pinned here too: SIGTERM exits 0
        # and the socket directory holds only the store artifacts.
        spec_path = _write_spec(tmp_path)
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        socket_path = str(run_dir / "evald.sock")
        store = str(run_dir / "evals.sqlite")

        with running_daemon("--socket", socket_path, "--store", store) \
                as (daemon, address):
            [result] = run_clients([spec_path], address, tmp_path)
            assert result["ok"]
        assert daemon.wait(timeout=60) == 0

        leftovers = sorted(path.name for path in run_dir.iterdir())
        assert "evald.sock" not in leftovers
        assert all(name.startswith("evals.sqlite") for name in leftovers), \
            leftovers


def test_fault_plans_round_trip_through_the_environment(tmp_path):
    # The daemon advertises the plan it inherited; a plain daemon
    # advertises none.  (Keeps the chaos path honest: tests above really
    # did inject through the same env channel.)
    env = service_env()
    env.pop("REPRO_FAULT_PLAN", None)
    probe = subprocess.run(
        [sys.executable, "-c",
         "import os; print(os.environ.get('REPRO_FAULT_PLAN'))"],
        env=env, capture_output=True, text=True)
    assert probe.stdout.strip() == "None"
