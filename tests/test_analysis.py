"""Tests for trend fitting, reward curves and report rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents import RandomAgent
from repro.analysis import (
    RewardCurve,
    exploration_trace,
    fit_trend,
    format_table,
    improvement_ratio,
    render_comparison,
    render_operator_table,
    render_table3,
    reward_curve,
    reward_curves,
    trace_trends,
)
from repro.dse import explore
from repro.errors import AnalysisError


@pytest.fixture
def random_result(matmul_env):
    agent = RandomAgent(num_actions=matmul_env.action_space.n, seed=0)
    return explore(matmul_env, agent, max_steps=120, seed=0)


class TestTrends:
    def test_fit_trend_recovers_linear_series(self):
        series = 2.0 * np.arange(50) + 5.0
        trend = fit_trend(series)
        assert trend.slope == pytest.approx(2.0)
        assert trend.intercept == pytest.approx(5.0)
        assert trend.increasing

    def test_fit_trend_flat_series(self):
        trend = fit_trend(np.full(20, 3.0))
        assert trend.slope == pytest.approx(0.0, abs=1e-9)
        assert not trend.increasing

    def test_fit_trend_requires_two_points(self):
        with pytest.raises(AnalysisError):
            fit_trend(np.array([1.0]))

    def test_trend_predict(self):
        trend = fit_trend(np.arange(10, dtype=float))
        np.testing.assert_allclose(trend.predict(np.array([0, 9])), [0.0, 9.0], atol=1e-9)

    def test_exploration_trace_keys_and_lengths(self, random_result):
        trace = exploration_trace(random_result)
        assert set(trace) == {"step", "power_mw", "time_ns", "accuracy"}
        assert all(len(series) == random_result.num_steps for series in trace.values())

    def test_trace_trends_produces_three_lines(self, random_result):
        trends = trace_trends(random_result)
        assert set(trends) == {"power_mw", "time_ns", "accuracy"}


class TestRewardCurves:
    def test_reward_curve_windows(self, random_result):
        curve = reward_curve(random_result, window=40)
        assert curve.window == 40
        assert curve.num_windows == int(np.ceil(random_result.num_steps / 40))
        assert curve.window_centers()[0] == pytest.approx(20.0)

    def test_reward_curves_keyed_by_benchmark(self, random_result):
        curves = reward_curves([random_result], window=50)
        assert random_result.benchmark_name in curves

    def test_improvement_ratio(self):
        curve = RewardCurve(benchmark_name="x", window=10,
                            averages=np.array([-1.0, 0.0, 0.5]))
        assert improvement_ratio(curve) == pytest.approx(1.5)

    def test_improvement_ratio_single_window(self):
        curve = RewardCurve(benchmark_name="x", window=10, averages=np.array([0.3]))
        assert improvement_ratio(curve) == 0.0

    def test_improvement_ratio_empty_raises(self):
        curve = RewardCurve(benchmark_name="x", window=10, averages=np.array([]))
        with pytest.raises(AnalysisError):
            improvement_ratio(curve)


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1], ["bbbb", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "value" in lines[0]
        assert "bbbb" in lines[3]

    def test_render_operator_tables(self, catalog):
        adders = render_operator_table(catalog, kind="adder", measure=False)
        multipliers = render_operator_table(catalog, kind="multiplier", measure=False)
        assert "add8_00M" in adders
        assert "mul32_043" in multipliers
        assert "MRED" in adders

    def test_render_operator_table_with_measurement(self, catalog):
        table = render_operator_table(catalog, kind="adder", measure=True, samples=500)
        assert "MRED % (measured)" in table

    def test_render_table3(self, random_result, matmul_env):
        table = render_table3({"matmul": random_result}, matmul_env.evaluator.catalog)
        assert "Δpower sol" in table
        assert "matmul" in table

    def test_render_comparison(self, random_result):
        table = render_comparison([random_result])
        assert "random" in table
        assert "feasible %" in table
