"""Tests for trend fitting, reward curves and report rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents import RandomAgent
from repro.analysis import (
    RewardCurve,
    characterize_catalog,
    exploration_trace,
    fit_trend,
    format_table,
    improvement_ratio,
    render_comparison,
    render_operator_table,
    render_table3,
    reward_curve,
    reward_curves,
    trace_trends,
)
from repro.dse import explore
from repro.errors import AnalysisError


@pytest.fixture
def random_result(matmul_env):
    agent = RandomAgent(num_actions=matmul_env.action_space.n, seed=0)
    return explore(matmul_env, agent, max_steps=120, seed=0)


class TestTrends:
    def test_fit_trend_recovers_linear_series(self):
        series = 2.0 * np.arange(50) + 5.0
        trend = fit_trend(series)
        assert trend.slope == pytest.approx(2.0)
        assert trend.intercept == pytest.approx(5.0)
        assert trend.increasing

    def test_fit_trend_flat_series(self):
        trend = fit_trend(np.full(20, 3.0))
        assert trend.slope == pytest.approx(0.0, abs=1e-9)
        assert not trend.increasing

    def test_fit_trend_requires_two_points(self):
        with pytest.raises(AnalysisError):
            fit_trend(np.array([1.0]))

    def test_trend_predict(self):
        trend = fit_trend(np.arange(10, dtype=float))
        np.testing.assert_allclose(trend.predict(np.array([0, 9])), [0.0, 9.0], atol=1e-9)

    def test_exploration_trace_keys_and_lengths(self, random_result):
        trace = exploration_trace(random_result)
        assert set(trace) == {"step", "power_mw", "time_ns", "accuracy"}
        assert all(len(series) == random_result.num_steps for series in trace.values())

    def test_trace_trends_produces_three_lines(self, random_result):
        trends = trace_trends(random_result)
        assert set(trends) == {"power_mw", "time_ns", "accuracy"}


class TestRewardCurves:
    def test_reward_curve_windows(self, random_result):
        curve = reward_curve(random_result, window=40)
        assert curve.window == 40
        assert curve.num_windows == int(np.ceil(random_result.num_steps / 40))
        assert curve.window_centers()[0] == pytest.approx(20.0)

    def test_reward_curves_keyed_by_benchmark(self, random_result):
        curves = reward_curves([random_result], window=50)
        assert random_result.benchmark_name in curves

    def test_improvement_ratio(self):
        curve = RewardCurve(benchmark_name="x", window=10,
                            averages=np.array([-1.0, 0.0, 0.5]))
        assert improvement_ratio(curve) == pytest.approx(1.5)

    def test_improvement_ratio_single_window(self):
        curve = RewardCurve(benchmark_name="x", window=10, averages=np.array([0.3]))
        assert improvement_ratio(curve) == 0.0

    def test_improvement_ratio_empty_raises(self):
        curve = RewardCurve(benchmark_name="x", window=10, averages=np.array([]))
        with pytest.raises(AnalysisError):
            improvement_ratio(curve)


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1], ["bbbb", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "value" in lines[0]
        assert "bbbb" in lines[3]

    def test_render_operator_tables(self, catalog):
        adders = render_operator_table(catalog, kind="adder", measure=False)
        multipliers = render_operator_table(catalog, kind="multiplier", measure=False)
        assert "add8_00M" in adders
        assert "mul32_043" in multipliers
        assert "MRED" in adders

    def test_render_operator_table_with_measurement(self, catalog):
        table = render_operator_table(catalog, kind="adder", measure=True, samples=500)
        assert "MRED % (measured)" in table

    def test_render_table3(self, random_result, matmul_env):
        table = render_table3({"matmul": random_result}, matmul_env.evaluator.catalog)
        assert "Δpower sol" in table
        assert "matmul" in table

    def test_render_comparison(self, random_result):
        table = render_comparison([random_result])
        assert "random" in table
        assert "feasible %" in table

    def test_characterize_catalog_matches_rendered_table(self, catalog):
        characterisation = characterize_catalog(catalog, kind="adder", samples=500)
        assert [entry.name for entry, _ in characterisation] == \
            [entry.name for entry in catalog.adders]
        reports = [report for _, report in characterisation]
        with_reports = render_operator_table(catalog, kind="adder", measure=True,
                                             samples=500, reports=reports)
        fresh = render_operator_table(catalog, kind="adder", measure=True,
                                      samples=500)
        assert with_reports == fresh

    def test_characterize_catalog_rejects_unknown_kind(self, catalog):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="adder"):
            characterize_catalog(catalog, kind="divider")

    def test_report_count_mismatch_rejected(self, catalog):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="report"):
            render_operator_table(catalog, kind="adder", measure=True, reports=[])


def _synthetic_result(catalog) -> "ExplorationResult":
    """A tiny hand-built exploration whose rendered tables are known exactly."""
    from repro.dse.design_space import DesignPoint
    from repro.dse.results import ExplorationResult, StepRecord
    from repro.dse.thresholds import ExplorationThresholds
    from repro.metrics.deltas import ObjectiveDeltas
    from repro.operators.energy import RunCost

    point = DesignPoint(adder_index=1, multiplier_index=2,
                        variables=(True, False))
    steps = [
        # (accuracy, power, time, reward, violated)
        (0.0, 0.0, 0.0, 0.0, False),       # baseline
        (2.5, 120.0, 30.0, 1.0, False),    # feasible
        (9.0, 150.0, 45.0, -1.0, True),    # infeasible (Δacc > threshold)
        (1.5, 100.0, 25.0, 1.0, False),    # feasible solution
    ]
    cumulative = 0.0
    records = []
    for index, (accuracy, power, time_ns, reward, violated) in enumerate(steps):
        cumulative += reward
        records.append(StepRecord(
            step=index,
            action=None if index == 0 else 0,
            point=point,
            deltas=ObjectiveDeltas(accuracy=accuracy, power_mw=power,
                                   time_ns=time_ns),
            reward=reward,
            cumulative_reward=cumulative,
            constraint_violated=violated,
            is_baseline=index == 0,
        ))
    return ExplorationResult(
        benchmark_name="synthetic",
        records=records,
        thresholds=ExplorationThresholds(accuracy=5.0, power_mw=200.0,
                                         time_ns=100.0),
        precise_cost=RunCost(power_mw=300.0, time_ns=120.0, operation_count=10),
        agent_name="q-learning",
    )


class TestRenderingGolden:
    """Exact expected output for the table renderers (golden tests).

    The inputs are hand-built, so every cell is known in advance; any change
    to number formatting, column order or summary semantics shows up as a
    diff against these strings.
    """

    def test_render_table3_golden(self, catalog):
        result = _synthetic_result(catalog)
        # adder_index=1 / multiplier_index=2 resolve through the MRED-sorted
        # catalog to these names; the trailing spaces are the fixed-width
        # padding of the last column.
        table = render_table3({"synthetic": result}, catalog)
        expected = (
            "benchmark | steps | Δpower min | Δpower sol | Δpower max | "
            "Δtime min | Δtime sol | Δtime max | Δacc min | Δacc sol | "
            "Δacc max | adder    | multiplier   \n"
            "----------+-------+------------+------------+------------+"
            "-----------+-----------+-----------+----------+----------+"
            "----------+----------+--------------\n"
            "synthetic | 4     | 0.000      | 100.000    | 150.000    | "
            "0.000     | 25.000    | 45.000    | 0.000    | 1.500    | "
            "9.000    | add8_1HG | mul32_precise"
        )
        assert table == expected

    def test_render_comparison_golden(self, catalog):
        result = _synthetic_result(catalog)
        table = render_comparison([result])
        # Two of the three scored steps are feasible (66.7 %); the best
        # feasible step is the one with the largest Δpower + Δtime (step 1).
        expected = (
            "explorer   | steps | feasible % | best Δpower | best Δtime | best Δacc\n"
            "-----------+-------+------------+-------------+------------+----------\n"
            "q-learning | 4     | 66.7       | 120.000     | 30.000     | 2.500    "
        )
        assert table == expected

    def test_render_comparison_without_feasible_steps_golden(self, catalog):
        result = _synthetic_result(catalog)
        infeasible = result.__class__(
            benchmark_name=result.benchmark_name,
            records=[record for record in result.records
                     if record.is_baseline or record.deltas.accuracy > 5.0],
            thresholds=result.thresholds,
            precise_cost=result.precise_cost,
            agent_name="random",
        )
        table = render_comparison([infeasible])
        expected = (
            "explorer | steps | feasible % | best Δpower | best Δtime | best Δacc\n"
            "---------+-------+------------+-------------+------------+----------\n"
            "random   | 2     | 0.0        | -           | -          | -        "
        )
        assert table == expected

    def test_render_operator_table_published_golden(self, catalog):
        table = render_operator_table(catalog, kind="adder", measure=False)
        lines = table.splitlines()
        assert lines[0].split(" | ") == [
            "operator ", "width", "MRED % (paper)", "power (mW)", "time (ns)"]
        first = catalog.adders[0]
        cells = [cell.strip() for cell in lines[2].split(" | ")]
        assert cells == [
            first.name,
            str(first.width),
            f"{first.published.mred_percent:.3f}",
            f"{first.published.power_mw:.4f}",
            f"{first.published.delay_ns:.3f}",
        ]
        # One row per catalog adder, in catalog (MRED-sorted) order.
        assert len(lines) == 2 + len(catalog.adders)
