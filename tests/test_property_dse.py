"""Property-based tests for design-space, reward and space invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse import Algorithm1Reward, DesignPoint, ExplorationThresholds
from repro.dse.design_space import DesignSpace
from repro.gymlite import spaces
from repro.metrics import ObjectiveDeltas
from repro.operators import default_catalog

_CATALOG = default_catalog().restrict_widths(8, 8)


def _space():
    from repro.benchmarks import MatMulBenchmark

    return DesignSpace(MatMulBenchmark(rows=2, inner=2, cols=2), _CATALOG)


design_points = st.builds(
    DesignPoint,
    adder_index=st.integers(min_value=1, max_value=6),
    multiplier_index=st.integers(min_value=1, max_value=6),
    variables=st.tuples(st.booleans(), st.booleans(), st.booleans()),
)

deltas = st.builds(
    ObjectiveDeltas,
    accuracy=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    power_mw=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    time_ns=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)

thresholds_strategy = st.builds(
    ExplorationThresholds,
    accuracy=st.floats(min_value=0, max_value=1e5, allow_nan=False),
    power_mw=st.floats(min_value=0, max_value=1e5, allow_nan=False),
    time_ns=st.floats(min_value=0, max_value=1e5, allow_nan=False),
)


class TestDesignPointProperties:
    @settings(max_examples=100, deadline=None)
    @given(point=design_points)
    def test_toggle_is_an_involution(self, point):
        for position in range(len(point.variables)):
            assert point.with_variable_toggled(position).with_variable_toggled(position) == point

    @settings(max_examples=100, deadline=None)
    @given(point=design_points)
    def test_key_identity(self, point):
        clone = DesignPoint(point.adder_index, point.multiplier_index, point.variables)
        assert point == clone
        assert point.key() == clone.key()
        assert hash(point) == hash(clone)

    @settings(max_examples=100, deadline=None)
    @given(point=design_points)
    def test_points_from_strategy_are_inside_the_space(self, point):
        assert _space().contains(point)

    @settings(max_examples=100, deadline=None)
    @given(point=design_points)
    def test_neighbors_differ_in_exactly_one_knob(self, point):
        space = _space()
        for neighbor in space.neighbors(point):
            changes = (
                int(neighbor.adder_index != point.adder_index)
                + int(neighbor.multiplier_index != point.multiplier_index)
                + sum(a != b for a, b in zip(neighbor.variables, point.variables))
            )
            assert changes == 1
            assert space.contains(neighbor)


class TestRewardProperties:
    @settings(max_examples=200, deadline=None)
    @given(point=design_points, observation=deltas, limits=thresholds_strategy)
    def test_algorithm1_reward_is_one_of_four_values(self, point, observation, limits):
        reward = Algorithm1Reward(max_reward=100.0)
        outcome = reward(point, observation, limits, _space())
        assert outcome.reward in (-100.0, -1.0, 1.0, 100.0)

    @settings(max_examples=200, deadline=None)
    @given(point=design_points, observation=deltas, limits=thresholds_strategy)
    def test_violation_flag_matches_accuracy_threshold(self, point, observation, limits):
        outcome = Algorithm1Reward()(point, observation, limits, _space())
        assert outcome.constraint_violated == (observation.accuracy > limits.accuracy)

    @settings(max_examples=200, deadline=None)
    @given(point=design_points, observation=deltas, limits=thresholds_strategy)
    def test_termination_only_at_the_most_aggressive_feasible_point(self, point, observation,
                                                                    limits):
        space = _space()
        outcome = Algorithm1Reward()(point, observation, limits, space)
        if outcome.terminate:
            assert observation.accuracy <= limits.accuracy
            assert point.adder_index == space.num_adders
            assert point.multiplier_index == space.num_multipliers
            assert point.all_variables_selected


class TestSpaceSamplingProperties:
    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2 ** 31 - 1))
    def test_discrete_samples_always_contained(self, seed):
        space = spaces.Discrete(7, start=1, seed=seed)
        assert space.contains(space.sample())

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2 ** 31 - 1))
    def test_multibinary_samples_always_contained(self, seed):
        space = spaces.MultiBinary(5, seed=seed)
        assert space.contains(space.sample())

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2 ** 31 - 1))
    def test_random_design_points_are_valid(self, seed):
        space = _space()
        rng = np.random.default_rng(seed)
        assert space.contains(space.random_point(rng))
