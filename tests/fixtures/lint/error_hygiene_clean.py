"""Fixture: error-hygiene-compliant patterns that must NOT be flagged."""

import traceback


def _describe_failure(job):
    """Same-module helper that captures the traceback (one-hop rule)."""
    return f"job {job!r} failed:\n{traceback.format_exc()}"


def reraises(job):
    try:
        return job.run()
    except Exception as exc:
        raise RuntimeError(f"job {job!r} failed") from exc


def captures_inline(job):
    try:
        return job.run(), None
    except Exception:
        return None, traceback.format_exc()


def delegates_to_helper(job):
    try:
        return job.run(), None
    except Exception:
        return None, _describe_failure(job)


def narrow_catch_is_fine(job):
    try:
        return job.run()
    except ValueError:
        return None
