"""Fixture: error-hygiene violations (swallowed broad excepts)."""


def swallows_silently(job):
    try:
        return job.run()
    except Exception:  # line 7: swallowed, no traceback captured
        return None


def keeps_only_repr(job):
    try:
        return job.run(), None
    except BaseException as exc:  # line 14: repr() is not a traceback
        return None, repr(exc)


def bare_except(job):
    try:
        return job.run()
    except:  # noqa: E722  # line 21: bare except, swallowed
        return None
