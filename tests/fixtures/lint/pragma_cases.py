"""Fixture: pragma suppression semantics.

* a reasonless pragma suppresses ordinary rules;
* ``disable=all`` suppresses every rule on its line;
* ``error-hygiene`` (``requires_reason``) rejects reasonless pragmas and
  honours reasoned ones.
"""

import time


def suppressed_wall_clock():
    return time.time()  # repro: disable=determinism


def suppressed_by_all():
    return time.time()  # repro: disable=all -- display-only timestamp


def reasonless_broad_except(job):
    try:
        return job.run()
    except Exception:  # repro: disable=error-hygiene
        return None


def reasoned_broad_except(job):
    try:
        return job.run()
    except Exception:  # repro: disable=error-hygiene -- probe: failure means unsupported, detail is irrelevant
        return None
