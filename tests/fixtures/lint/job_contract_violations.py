"""Fixture: job-contract violations (unpicklable job payload shapes)."""

from dataclasses import dataclass, field
from typing import Callable, Iterator, TextIO

StepHook = Callable[[int], None]


@dataclass
class MutableJob:  # line 10: job dataclass not frozen
    label: str


@dataclass(frozen=True)
class LeakyJob:
    hook: Callable[[int], int]  # line 16: callable field
    step_hook: StepHook  # line 17: module-level Callable alias
    stream: Iterator[int]  # line 18: generator/iterator field
    log: TextIO  # line 19: open-handle field
    fallback: object = field(default=lambda: 0)  # line 20: lambda default
