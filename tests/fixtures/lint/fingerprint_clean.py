"""Fixture: fingerprint-purity-compliant patterns that must NOT be flagged."""

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple


@dataclass(frozen=True)
class GoodSpec:
    label: str
    weights: Tuple[float, ...]
    params: Mapping[str, int]
    parent: Optional["GoodSpec"] = None
    _memo: Optional[str] = None  # underscore field: fingerprint-invisible

    def fingerprint(self):
        return f"{self.label}:{self.weights}"


def benchmark_fingerprint(benchmark):
    parts = [
        f"{attr}={value!r}"
        for attr, value in sorted(vars(benchmark).items())
        if not attr.startswith("_")
    ]
    return "|".join(parts)


class NotFingerprinted:
    """No fingerprint() method: mutability is fine here."""

    def __init__(self):
        self.cache = {}
