"""Fixture: runtime-path error-hygiene compliant patterns.

Broad handlers in runtime code that re-raise, classify inline via
``is_retryable``, or delegate to a helper chain that classifies — all
compliant.
"""

import traceback

from repro.runtime.resilience import is_retryable


def classifies_inline(job):
    try:
        return job.run(), None, False
    except Exception as exc:
        return None, traceback.format_exc(), is_retryable(exc)


def _capture_failure(job, exc):
    return f"{job}: {traceback.format_exc()}", is_retryable(exc)


def delegates_to_classifying_helper(job):
    try:
        return job.run(), None, False
    except Exception as exc:
        error, retryable = _capture_failure(job, exc)
        return None, error, retryable


def _capture(job, exc):
    return _capture_failure(job, exc)


def delegates_two_hops(job):
    try:
        return job.run(), None, False
    except Exception as exc:
        error, retryable = _capture(job, exc)
        return None, error, retryable


def reraises_wrapped(job):
    try:
        return job.run()
    except Exception as exc:
        raise RuntimeError(f"{job} failed") from exc
