"""Fixture: runtime-path error-hygiene violations (unclassified captures).

This file lives under a ``runtime/`` directory, so its broad handlers
must classify captured failures as retryable (``is_retryable`` or a
helper chain reaching it) — a perfect traceback alone is not enough.
"""

import traceback


def captures_but_never_classifies(job):
    try:
        return job.run(), None
    except Exception:  # line 14: traceback yes, classification no
        return None, traceback.format_exc()


def _format_error(job):
    return f"{job}: {traceback.format_exc()}"


def delegates_capture_but_not_classification(job):
    try:
        return job.run(), None
    except Exception:  # line 25: helper captures, nobody classifies
        return None, _format_error(job)
