"""Fixture: fingerprint-purity violations (the PR-4 bug class)."""

from dataclasses import dataclass
from typing import Dict, List


class MutableSpec:  # line 7: fingerprint() on a plain mutable class
    def fingerprint(self):
        return "x"


@dataclass
class UnfrozenSpec:  # line 13: @dataclass without frozen=True
    label: str

    def fingerprint(self):
        return self.label


@dataclass(frozen=True)
class LeakySpec:
    weights: List[float]  # line 22: mutable fingerprint-visible field
    table: Dict[str, int]  # line 23: mutable fingerprint-visible field

    def fingerprint(self):
        return repr(self.weights)


def benchmark_fingerprint(benchmark):
    # vars() enumeration without an underscore guard (flagged on the vars call)
    return "|".join(f"{k}={v}" for k, v in sorted(vars(benchmark).items()))
