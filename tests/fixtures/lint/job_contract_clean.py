"""Fixture: job-contract-compliant patterns that must NOT be flagged."""

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class GoodJob:
    benchmark_label: str
    seed: int
    max_steps: int
    thresholds: Tuple[float, ...] = ()
    store_path: Optional[str] = None  # ship a path, reopen in the worker


class DispatchJob:
    """Not a dataclass: not a job payload shape, so out of scope."""

    def __init__(self, fn):
        self.fn = fn


@dataclass(frozen=True)
class Helper:
    """Not named *Job and not a registered extra: out of scope."""

    callback: object = None
