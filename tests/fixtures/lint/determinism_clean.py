"""Fixture: determinism-compliant patterns that must NOT be flagged."""

import time

import numpy as np


def seeded_generator(seed):
    rng = np.random.default_rng(seed)
    return rng.random()


def durations_are_fine():
    return time.perf_counter()


def order_insensitive_set_use(values):
    unique = sorted(set(values))
    count = len(set(values))
    smallest = min({3, 1, 2})
    return unique, count, smallest, 3 in set(values)


class Agent:
    def __init__(self, rng):
        self.np_random = rng

    def act(self):
        # Attribute of self never resolves to numpy.random: not flagged.
        return self.np_random.random()
