"""Fixture: every way the ``determinism`` rule should fire.

Never imported — the lint engine parses, it does not execute.
"""

import os
import random
import time
from datetime import datetime

import numpy as np
from numpy.random import default_rng


def global_numpy_rng():
    return np.random.choice([1, 2, 3])  # line 16: shared global RNG


def global_stdlib_rng():
    return random.random()  # line 20: shared global RNG


def unseeded_generator():
    return default_rng()  # line 24: unseeded ctor (aliased from-import)


def wall_clock():
    stamp = time.time()  # line 28: wall clock
    now = datetime.now()  # line 29: wall clock
    return stamp, now


def environment_reads():
    home = os.environ["HOME"]  # line 34: os.environ
    path = os.getenv("PATH")  # line 35: os.getenv
    return home, path


def set_iteration(values):
    for item in {3, 1, 2}:  # line 40: for over a set literal
        print(item)
    ordered = list(set(values))  # line 42: list(set(...))
    doubled = [v * 2 for v in set(values)]  # line 43: comprehension over set
    joined = ",".join({"b", "a"})  # line 44: join over set
    return ordered, doubled, joined
