"""Fixture: a file that does not parse (reported, never raised)."""

def half_finished(:
    return
