"""Tests for the declarative experiment API (specs, registry, runner, report)."""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.benchmarks import DotProductBenchmark
from repro.dse import AxcDseEnv, Campaign
from repro.errors import ConfigurationError, UnknownBenchmarkError
from repro.experiments import (
    BenchmarkSpec,
    ExperimentAgentSpec,
    ExperimentSpec,
    RuntimeSpec,
    ThresholdSpec,
    agent_names,
    apply_overrides,
    baseline_agent_names,
    rl_agent_names,
    run_experiment,
)
from repro.experiments.registry import register_agent
from repro.runtime import AgentSpec, ProcessExecutor, execute_job
from repro.runtime.jobs import ExplorationJob


def _tiny_campaign_spec(**overrides) -> ExperimentSpec:
    payload = {
        "kind": "campaign",
        "benchmarks": ["dotproduct:length=12"],
        "agents": ["q-learning", "hill-climbing"],
        "seeds": [0, 1],
        "max_steps": 20,
    }
    payload.update(overrides)
    return ExperimentSpec.from_dict(payload)


class TestBenchmarkSpec:
    def test_parse_bare_name(self):
        spec = BenchmarkSpec.parse("matmul")
        assert spec.name == "matmul"
        assert spec.params == {}
        assert spec.label == "matmul"

    def test_parse_parameterized(self):
        spec = BenchmarkSpec.parse("matmul:rows=50,inner=50,cols=50")
        assert spec.params == {"rows": 50, "inner": 50, "cols": 50}
        assert spec.label == "matmul:rows=50,inner=50,cols=50"
        built = spec.build()
        assert built.rows == built.cols == 50

    def test_parse_paper_label(self):
        spec = BenchmarkSpec.parse("matmul_50x50")
        assert spec.name == "matmul"
        assert spec.params == {"rows": 50, "inner": 50, "cols": 50}
        assert spec.label == "matmul_50x50"
        fir = BenchmarkSpec.parse("fir_200")
        assert (fir.name, fir.params) == ("fir", {"num_samples": 200})

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(UnknownBenchmarkError):
            BenchmarkSpec.parse("nothing")
        with pytest.raises(UnknownBenchmarkError):
            BenchmarkSpec(name="nothing")

    def test_unknown_constructor_parameter_rejected(self):
        spec = BenchmarkSpec.parse("dotproduct:bogus=3")
        with pytest.raises(ConfigurationError, match="bogus"):
            spec.build()

    def test_malformed_parameters_rejected(self):
        with pytest.raises(ConfigurationError, match="key=value"):
            BenchmarkSpec.parse("matmul:rows")

    def test_round_trip(self):
        spec = BenchmarkSpec.parse("matmul_10x10")
        assert BenchmarkSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown benchmark spec key"):
            BenchmarkSpec.from_dict({"name": "matmul", "size": 10})


class TestExperimentAgentSpec:
    def test_every_registered_name_accepted(self):
        for name in agent_names():
            assert ExperimentAgentSpec(name).name == name

    def test_unknown_agent_rejected_with_choices(self):
        with pytest.raises(ConfigurationError, match="q-learning"):
            ExperimentAgentSpec("annealing")

    def test_parse_hyperparams(self):
        spec = ExperimentAgentSpec.parse("genetic:population_size=8,generations=5")
        assert spec.hyperparams == {"population_size": 8, "generations": 5}
        assert ExperimentAgentSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown agent spec key"):
            ExperimentAgentSpec.from_dict({"name": "sarsa", "options": {}})

    def test_non_serializable_values_rejected_at_construction(self):
        from repro.agents.schedules import LinearDecayEpsilon

        # A schedule object would break to_json()/fingerprint() at use time,
        # so the spec refuses it up front (the runtime AgentSpec still takes
        # arbitrary options for the imperative API).
        with pytest.raises(ConfigurationError, match="JSON-serializable"):
            ExperimentAgentSpec(
                "q-learning",
                hyperparams={"epsilon": LinearDecayEpsilon(1.0, 0.05, 10)},
            )
        with pytest.raises(ConfigurationError, match="JSON-serializable"):
            BenchmarkSpec("dotproduct", params={"length": {1, 2}})


class TestThresholdSpec:
    def test_default_derives_fractions(self):
        kwargs = ThresholdSpec().env_kwargs()
        assert kwargs == {"accuracy_factor": 0.4, "power_fraction": 0.5,
                          "time_fraction": 0.5}

    def test_explicit_thresholds(self):
        spec = ThresholdSpec(accuracy=5.0, power_mw=100.0, time_ns=200.0)
        thresholds = spec.env_kwargs()["thresholds"]
        assert (thresholds.accuracy, thresholds.power_mw, thresholds.time_ns) == \
            (5.0, 100.0, 200.0)

    def test_partial_explicit_rejected(self):
        with pytest.raises(ConfigurationError, match="all three"):
            ThresholdSpec(accuracy=5.0)

    def test_negative_fraction_rejected(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            ThresholdSpec(power_fraction=-0.1)

    def test_round_trip(self):
        spec = ThresholdSpec(accuracy_factor=0.3)
        assert ThresholdSpec.from_dict(spec.to_dict()) == spec


class TestRuntimeSpec:
    def test_serial_with_jobs_rejected(self):
        with pytest.raises(ConfigurationError, match="serial"):
            RuntimeSpec(executor="serial", jobs=4)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ConfigurationError, match="executor"):
            RuntimeSpec(executor="threads")

    def test_from_jobs_convention(self):
        assert RuntimeSpec.from_jobs(1).executor == "serial"
        process = RuntimeSpec.from_jobs(4, store_path="cache.sqlite")
        assert (process.executor, process.jobs, process.store_path) == \
            ("process", 4, "cache.sqlite")

    def test_round_trip(self):
        spec = RuntimeSpec.from_jobs(2, chunk_size=64)
        assert RuntimeSpec.from_dict(spec.to_dict()) == spec


class TestExperimentSpec:
    @pytest.mark.parametrize("payload", [
        {"kind": "explore", "benchmarks": ["matmul_10x10"],
         "agents": ["q-learning"], "seeds": [3], "max_steps": 50},
        {"kind": "compare", "benchmarks": ["dotproduct:length=16"],
         "agents": ["q-learning", "simulated-annealing", "genetic"],
         "seeds": [0], "max_steps": 40},
        {"kind": "campaign", "benchmarks": ["matmul", "fir_100"],
         "agents": ["q-learning", "hill-climbing"], "seeds": [0, 1, 2],
         "max_steps": 100,
         "runtime": {"executor": "process", "jobs": 2, "store_path": None,
                     "chunk_size": 256, "store_outputs": False}},
        {"kind": "sweep", "benchmarks": ["dotproduct"], "seeds": [0, 7],
         "runtime": {"executor": "serial", "jobs": 1, "store_path": "s.sqlite",
                     "chunk_size": 64, "store_outputs": False}},
    ])
    def test_round_trip_every_kind(self, payload):
        spec = ExperimentSpec.from_dict(payload)
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="kind"):
            ExperimentSpec.from_dict({"kind": "scan", "benchmarks": ["matmul"]})

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown experiment spec key"):
            ExperimentSpec.from_dict({"kind": "campaign",
                                      "benchmarks": ["matmul"],
                                      "agents": ["q-learning"],
                                      "workers": 4})

    def test_unknown_agent_rejected(self):
        with pytest.raises(ConfigurationError, match="registered agents"):
            _tiny_campaign_spec(agents=["gradient-descent"])

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(UnknownBenchmarkError):
            _tiny_campaign_spec(benchmarks=["nothing"])

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate benchmark label"):
            _tiny_campaign_spec(benchmarks=["matmul", "matmul"])

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate seeds"):
            _tiny_campaign_spec(seeds=[0, 0])

    def test_sweep_takes_no_agents(self):
        with pytest.raises(ConfigurationError, match="no agents"):
            ExperimentSpec.from_dict({"kind": "sweep", "benchmarks": ["dotproduct"],
                                      "agents": ["q-learning"]})

    def test_explore_is_single(self):
        with pytest.raises(ConfigurationError, match="single exploration"):
            ExperimentSpec.from_dict({"kind": "explore", "benchmarks": ["matmul"],
                                      "agents": ["q-learning"], "seeds": [0, 1]})

    def test_compare_needs_two_agents(self):
        with pytest.raises(ConfigurationError, match="at least two"):
            ExperimentSpec.from_dict({"kind": "compare", "benchmarks": ["matmul"],
                                      "agents": ["q-learning"]})

    def test_agent_variants_by_label(self):
        spec = _tiny_campaign_spec(
            agents=[{"name": "genetic", "label": "genetic-small",
                     "hyperparams": {"population_size": 4, "generations": 2}},
                    {"name": "genetic", "label": "genetic-large",
                     "hyperparams": {"population_size": 8, "generations": 2}}],
            seeds=[0],
        )
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec
        report = run_experiment(spec)
        assert report.ok
        assert set(report.summarize()) == {"genetic-small", "genetic-large"}
        small, large = report.entries
        assert small.result.num_steps < large.result.num_steps

    def test_duplicate_agent_labels_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate agent label"):
            _tiny_campaign_spec(agents=["genetic", {"name": "genetic",
                                                    "hyperparams": {"seed": 1}}])

    def test_invalid_benchmark_parameters_are_configuration_errors(self):
        spec = ExperimentSpec.from_dict({
            "kind": "explore", "benchmarks": ["matmul:rows=0"],
            "agents": ["q-learning"], "seeds": [0], "max_steps": 5,
        })
        with pytest.raises(ConfigurationError, match="rejected its configuration"):
            run_experiment(spec)

    def test_store_outputs_requires_a_boolean(self):
        with pytest.raises(ConfigurationError, match="store_outputs"):
            RuntimeSpec(store_outputs="false")

    def test_boolean_integers_rejected(self):
        with pytest.raises(ConfigurationError, match="max_steps"):
            _tiny_campaign_spec(max_steps=True)
        with pytest.raises(ConfigurationError, match="jobs"):
            RuntimeSpec(executor="process", jobs=True)
        with pytest.raises(ConfigurationError, match="chunk_size"):
            RuntimeSpec(chunk_size=True)

    def test_fingerprint_ignores_runtime_and_description(self):
        spec = _tiny_campaign_spec()
        moved = spec.with_runtime(RuntimeSpec(executor="process", jobs=8))
        assert moved.fingerprint() == spec.fingerprint()
        described = ExperimentSpec.from_dict(
            {**spec.to_dict(), "description": "same science, new words"}
        )
        assert described.fingerprint() == spec.fingerprint()

    def test_fingerprint_tracks_results_determining_fields(self):
        spec = _tiny_campaign_spec()
        assert _tiny_campaign_spec(max_steps=21).fingerprint() != spec.fingerprint()
        assert _tiny_campaign_spec(seeds=[0, 2]).fingerprint() != spec.fingerprint()
        assert (_tiny_campaign_spec(benchmarks=["dotproduct:length=13"]).fingerprint()
                != spec.fingerprint())

    def test_fingerprint_stable_across_processes(self):
        spec = _tiny_campaign_spec()
        program = (
            "import json, sys\n"
            "from repro.experiments import ExperimentSpec\n"
            "spec = ExperimentSpec.from_dict(json.loads(sys.argv[1]))\n"
            "print(spec.fingerprint())\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", program, json.dumps(spec.to_dict())],
            capture_output=True, text=True, check=True,
        )
        assert completed.stdout.strip() == spec.fingerprint()


class TestOverrides:
    def test_scalar_list_and_nested_paths(self):
        payload = _tiny_campaign_spec().to_dict()
        updated = apply_overrides(payload, [
            "max_steps=25",
            "seeds=[5]",
            "runtime.executor=process",
            "runtime.jobs=2",
            "benchmarks.0.params.length=16",
        ])
        spec = ExperimentSpec.from_dict(updated)
        assert spec.max_steps == 25
        assert spec.seeds == (5,)
        assert spec.runtime.jobs == 2
        assert spec.benchmarks[0].params["length"] == 16
        # The input payload is untouched.
        assert payload["max_steps"] == 20

    def test_overrides_reach_omitted_optional_sections(self):
        # A minimal document relying on the defaults can still be steered
        # onto another runtime — the canonical `--set runtime.jobs=4` case.
        payload = {"kind": "explore", "benchmarks": ["dotproduct:length=12"],
                   "agents": ["q-learning"], "seeds": [0], "max_steps": 5}
        updated = apply_overrides(payload, ["runtime.executor=process",
                                            "runtime.jobs=2",
                                            "thresholds.accuracy_factor=0.3"])
        spec = ExperimentSpec.from_dict(updated)
        assert (spec.runtime.executor, spec.runtime.jobs) == ("process", 2)
        assert spec.thresholds.accuracy_factor == 0.3

    def test_overrides_reach_string_shorthand_benchmarks(self):
        payload = {"kind": "explore", "benchmarks": ["matmul_10x10"],
                   "agents": ["q-learning"], "seeds": [0], "max_steps": 5}
        updated = apply_overrides(payload, ["benchmarks.0.params.rows=20"])
        spec = ExperimentSpec.from_dict(updated)
        assert spec.benchmarks[0].params["rows"] == 20
        # Paper labels are explicitly chosen, so they survive the override.
        assert spec.benchmarks[0].label == "matmul_10x10"

    def test_overrides_recompute_parameter_derived_labels(self):
        # A label that merely restates the parameters must not keep
        # describing the pre-override configuration.
        for benchmarks in (["dotproduct:length=16"],
                           [{"name": "dotproduct", "params": {"length": 16},
                             "label": "dotproduct:length=16"}]):
            payload = {"kind": "explore", "benchmarks": benchmarks,
                       "agents": ["q-learning"], "seeds": [0], "max_steps": 5}
            updated = apply_overrides(payload, ["benchmarks.0.params.length=64"])
            spec = ExperimentSpec.from_dict(updated)
            assert spec.benchmarks[0].params["length"] == 64
            assert spec.benchmarks[0].label == "dotproduct:length=64"
        # A custom label is the user's grouping key and is preserved.
        payload = {"kind": "explore",
                   "benchmarks": [{"name": "dotproduct",
                                   "params": {"length": 16}, "label": "tiny"}],
                   "agents": ["q-learning"], "seeds": [0], "max_steps": 5}
        updated = apply_overrides(payload, ["benchmarks.0.params.length=64"])
        assert ExperimentSpec.from_dict(updated).benchmarks[0].label == "tiny"

    def test_overrides_recompute_name_derived_agent_labels(self):
        payload = {"kind": "explore", "benchmarks": ["dotproduct:length=12"],
                   "agents": ["q-learning"], "seeds": [0], "max_steps": 5}
        updated = apply_overrides(payload, ["agents.0.name=hill-climbing"])
        spec = ExperimentSpec.from_dict(updated)
        assert spec.agents[0].name == "hill-climbing"
        assert spec.agents[0].label == "hill-climbing"

    def test_missing_intermediate_path_rejected(self):
        with pytest.raises(ConfigurationError, match="not found"):
            apply_overrides(_tiny_campaign_spec().to_dict(), ["runtim.jobs=2"])

    def test_list_index_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError, match="out of range"):
            apply_overrides(_tiny_campaign_spec().to_dict(),
                            ["benchmarks.3.params.length=16"])

    def test_malformed_assignment_rejected(self):
        with pytest.raises(ConfigurationError, match="path=value"):
            apply_overrides(_tiny_campaign_spec().to_dict(), ["max_steps"])

    def test_new_keys_survive_to_strict_validation(self):
        updated = apply_overrides(_tiny_campaign_spec().to_dict(), ["workers=4"])
        with pytest.raises(ConfigurationError, match="unknown experiment spec key"):
            ExperimentSpec.from_dict(updated)


class TestAgentRegistry:
    def test_registry_names_every_family(self):
        assert set(rl_agent_names()) == {"q-learning", "sarsa", "random"}
        assert set(baseline_agent_names()) == {
            "hill-climbing", "simulated-annealing", "genetic", "exhaustive"
        }
        assert agent_names() == rl_agent_names() + baseline_agent_names()

    def test_agent_names_delegation(self):
        from repro.runtime import AGENT_NAMES
        from repro.runtime import jobs

        assert AGENT_NAMES == agent_names()
        assert jobs.AGENT_NAMES == agent_names()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_agent("q-learning", "rl", lambda *a: None)

    def test_agent_spec_accepts_baselines(self):
        for name in baseline_agent_names():
            assert AgentSpec(name).is_baseline()
        assert not AgentSpec("q-learning").is_baseline()

    def test_build_refuses_wrong_family(self):
        environment = AxcDseEnv(DotProductBenchmark(length=12))
        with pytest.raises(ConfigurationError, match="baseline"):
            AgentSpec("hill-climbing").build(environment, seed=0, max_steps=10)
        with pytest.raises(ConfigurationError, match="not a baseline"):
            AgentSpec("q-learning").build_baseline(
                environment.evaluator, environment.thresholds, 0, 10
            )

    def test_baseline_job_matches_direct_explorer(self):
        from repro.agents import SimulatedAnnealingExplorer

        benchmark = DotProductBenchmark(length=12)
        job = ExplorationJob(benchmark_label="dot", benchmark=benchmark, seed=3,
                             agent=AgentSpec("simulated-annealing"), max_steps=40)
        via_job = execute_job(job)

        environment = AxcDseEnv(benchmark, evaluation_seed=3)
        direct = SimulatedAnnealingExplorer(
            environment.evaluator, environment.thresholds,
            max_evaluations=40, seed=3,
        ).run()
        assert via_job.agent_name == "simulated-annealing"
        assert via_job.num_steps == direct.num_steps
        assert [record.deltas for record in via_job.records] == \
            [record.deltas for record in direct.records]

    def test_baseline_hyperparams_forwarded(self):
        from repro.agents import GeneticExplorer

        benchmark = DotProductBenchmark(length=12)
        hyperparams = {"population_size": 4, "generations": 2}
        job = ExplorationJob(
            benchmark_label="dot", benchmark=benchmark, seed=0,
            agent=AgentSpec("genetic", options=hyperparams), max_steps=10,
        )
        via_job = execute_job(job)

        environment = AxcDseEnv(benchmark, evaluation_seed=0)
        direct = GeneticExplorer(environment.evaluator, environment.thresholds,
                                 seed=0, **hyperparams).run()
        default = GeneticExplorer(environment.evaluator, environment.thresholds,
                                  seed=0).run()
        assert [record.deltas for record in via_job.records] == \
            [record.deltas for record in direct.records]
        # The overrides actually changed the search (16 x 20 by default).
        assert via_job.num_steps < default.num_steps


class TestRunExperiment:
    def test_serial_and_process_reports_match(self):
        spec = _tiny_campaign_spec()
        serial = run_experiment(spec)
        process = run_experiment(spec, executor=ProcessExecutor(n_jobs=2))
        assert serial.ok and process.ok
        assert [entry.payload() for entry in serial.entries] == \
            [entry.payload() for entry in process.entries]

    def test_explore_spec_matches_execute_job(self):
        spec = ExperimentSpec.from_dict({
            "kind": "explore", "benchmarks": ["dotproduct:length=12"],
            "agents": ["q-learning"], "seeds": [0], "max_steps": 25,
        })
        report = run_experiment(spec)
        direct = execute_job(ExplorationJob(
            benchmark_label="dotproduct:length=12",
            benchmark=DotProductBenchmark(length=12), seed=0,
            agent=AgentSpec("q-learning"), max_steps=25,
            env_kwargs={"accuracy_factor": 0.4, "power_fraction": 0.5,
                        "time_fraction": 0.5},
        ))
        result = report.entries[0].result
        assert result.num_steps == direct.num_steps
        assert [record.deltas for record in result.records] == \
            [record.deltas for record in direct.records]

    def test_sweep_spec_matches_run_sweep(self):
        from repro.dse import run_sweep

        spec = ExperimentSpec.from_dict({
            "kind": "sweep", "benchmarks": ["dotproduct:length=12"], "seeds": [0],
            "runtime": {"executor": "serial", "jobs": 1, "store_path": None,
                        "chunk_size": 96, "store_outputs": False},
        })
        report = run_experiment(spec)
        direct = run_sweep({"dotproduct:length=12": DotProductBenchmark(length=12)},
                           seeds=(0,), chunk_size=96)
        entry = report.entries[0]
        assert entry.agent is None
        assert entry.metrics["space_size"] == direct[0].space_size
        assert entry.metrics["evaluations"] == direct[0].evaluations
        assert [(r.point.key(), r.deltas) for r in entry.sweep_result.front] == \
            [(r.point.key(), r.deltas) for r in direct[0].front]

    def test_report_serializes_with_provenance(self):
        spec = _tiny_campaign_spec(seeds=[0])
        report = run_experiment(spec)
        payload = json.loads(report.to_json())
        assert payload["ok"] is True
        assert payload["provenance"]["fingerprint"] == spec.fingerprint()
        assert payload["spec"] == spec.to_dict()
        assert len(payload["entries"]) == 2
        assert set(payload["summaries"]) == {"q-learning", "hill-climbing"}
        for entry in payload["entries"]:
            assert {"benchmark_label", "seed", "agent", "ok",
                    "metrics", "duration_s"} <= set(entry)

    def test_failures_are_captured_per_entry(self):
        spec = _tiny_campaign_spec(
            agents=[{"name": "q-learning", "hyperparams": {}},
                    {"name": "genetic", "hyperparams": {"population_size": 1}}],
            seeds=[0],
        )
        report = run_experiment(spec)
        assert not report.ok
        assert len(report.failures) == 1
        assert report.failures[0].agent == "genetic"
        assert "population_size" in report.failures[0].error
        # The healthy entry still ran and serialization still works.
        assert report.entries[0].ok
        json.loads(report.to_json())

    def test_store_path_round_trip(self, tmp_path):
        store_path = str(tmp_path / "cache.sqlite")
        spec = _tiny_campaign_spec(
            seeds=[0],
            runtime={"executor": "serial", "jobs": 1, "store_path": store_path,
                     "chunk_size": 256, "store_outputs": False},
        )
        cold = run_experiment(spec)
        warm = run_experiment(spec)
        assert warm.store["hits"] > 0
        assert warm.store["path"] == store_path
        assert [entry.payload() for entry in cold.entries] == \
            [entry.payload() for entry in warm.entries]

    def test_campaign_from_spec_bridge(self):
        spec = ExperimentSpec.from_dict({
            "kind": "campaign", "benchmarks": ["dotproduct:length=12"],
            "agents": ["q-learning"], "seeds": [0, 1], "max_steps": 20,
        })
        campaign = Campaign.from_spec(spec)
        entries = campaign.run()
        report = run_experiment(spec)
        assert [(e.benchmark_label, e.seed) for e in entries] == \
            [(e.benchmark_label, e.seed) for e in report.entries]
        assert [e.result.solution.deltas for e in entries] == \
            [e.result.solution.deltas for e in report.entries]
        with pytest.raises(ConfigurationError, match="one agent family"):
            Campaign.from_spec(_tiny_campaign_spec())
