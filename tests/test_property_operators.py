"""Property-based tests (hypothesis) for the arithmetic operator invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.operators import (
    CarryCutAdder,
    DrumMultiplier,
    ExactAdder,
    ExactMultiplier,
    LogMultiplier,
    LowerOrAdder,
    OperandTruncationMultiplier,
    TruncatedAdder,
)

# Operand magnitudes stay well inside int64 even after the dynamic-range
# scaling of the 32-bit units.
operands = st.integers(min_value=-(2 ** 24), max_value=2 ** 24)
small_operands = st.integers(min_value=-127, max_value=127)


def _adders():
    return [
        ExactAdder(8),
        TruncatedAdder(8, cut=3),
        LowerOrAdder(8, cut=4),
        CarryCutAdder(8, segment=4),
        TruncatedAdder(16, cut=7),
        LowerOrAdder(16, cut=5),
    ]


def _multipliers():
    return [
        ExactMultiplier(8),
        OperandTruncationMultiplier(8, cut=3),
        LogMultiplier(8),
        DrumMultiplier(8, k=3),
        DrumMultiplier(32, k=8),
        OperandTruncationMultiplier(32, cut=20),
    ]


class TestAdderProperties:
    @settings(max_examples=60, deadline=None)
    @given(a=operands, b=operands)
    def test_exact_adder_is_exact_everywhere(self, a, b):
        assert int(ExactAdder(8).apply(a, b)) == a + b

    @settings(max_examples=60, deadline=None)
    @given(a=operands, b=operands)
    def test_error_is_bounded(self, a, b):
        # For operands inside the native range the error is bounded by the
        # unit's width (low-bit corruption); for wider operands the
        # dynamic-range scaling keeps it a bounded fraction of the operands.
        scale = max(abs(a), abs(b), 1)
        for adder in (ExactAdder(8), TruncatedAdder(8, cut=3), LowerOrAdder(8, cut=4),
                      TruncatedAdder(16, cut=7), LowerOrAdder(16, cut=5)):
            error = abs(int(adder.apply(a, b)) - (a + b))
            bound = max(scale, 1 << adder.width)
            assert error <= bound, f"{adder!r} error {error} exceeds bound {bound}"

    @settings(max_examples=60, deadline=None)
    @given(a=operands, b=operands)
    def test_carry_cut_error_is_bounded(self, a, b):
        # Dropped inter-segment carries on two's-complement operands can cost
        # a few times the operand scale, but stay within a small multiple of
        # the representable range at the scaled level.
        adder = CarryCutAdder(8, segment=4)
        scale = max(abs(a), abs(b), 1)
        error = abs(int(adder.apply(a, b)) - (a + b))
        bound = max(8 * scale, 1 << (adder.width + 2))
        assert error <= bound, f"error {error} exceeds bound {bound}"

    @settings(max_examples=60, deadline=None)
    @given(a=operands, b=operands)
    def test_commutativity_of_truncation_like_adders(self, a, b):
        # Families whose bit-level rule is symmetric must commute.
        for adder in (ExactAdder(8), TruncatedAdder(8, cut=3), LowerOrAdder(8, cut=4),
                      CarryCutAdder(8, segment=4)):
            assert int(adder.apply(a, b)) == int(adder.apply(b, a))

    @settings(max_examples=60, deadline=None)
    @given(a=operands)
    def test_adding_zero_on_small_operands(self, a):
        # With one operand zero the only possible error comes from the cut
        # low bits of the other operand (scaled up when the operand exceeds
        # the native range and dynamic-range scaling kicks in).
        adder = TruncatedAdder(16, cut=4)
        error = abs(int(adder.apply(a, 0)) - a)
        assert error <= 4 * (1 << 4) * max(1, abs(a) >> 14)

    @settings(max_examples=40, deadline=None)
    @given(values=st.lists(small_operands, min_size=2, max_size=20))
    def test_vectorised_equals_scalar_application(self, values):
        adder = LowerOrAdder(8, cut=3)
        a = np.array(values, dtype=np.int64)
        b = np.array(list(reversed(values)), dtype=np.int64)
        vectorised = adder.apply(a, b)
        scalars = np.array([int(adder.apply(int(x), int(y))) for x, y in zip(a, b)])
        np.testing.assert_array_equal(vectorised, scalars)


class TestMultiplierProperties:
    @settings(max_examples=60, deadline=None)
    @given(a=operands, b=operands)
    def test_exact_multiplier_is_exact_everywhere(self, a, b):
        assert int(ExactMultiplier(32).apply(a, b)) == a * b

    @settings(max_examples=60, deadline=None)
    @given(a=operands, b=operands)
    def test_sign_of_product_is_preserved(self, a, b):
        expected_sign = np.sign(a) * np.sign(b)
        for multiplier in _multipliers():
            result = int(multiplier.apply(a, b))
            assert result == 0 or np.sign(result) == expected_sign or expected_sign == 0

    @settings(max_examples=60, deadline=None)
    @given(a=operands, b=operands)
    def test_multiplying_by_zero_gives_zero(self, a, b):
        for multiplier in _multipliers():
            assert int(multiplier.apply(a, 0)) == 0
            assert int(multiplier.apply(0, b)) == 0

    @settings(max_examples=60, deadline=None)
    @given(a=st.integers(min_value=1, max_value=2 ** 20), b=st.integers(min_value=1, max_value=2 ** 20))
    def test_relative_error_is_bounded(self, a, b):
        exact = a * b
        for multiplier in _multipliers():
            error = abs(int(multiplier.apply(a, b)) - exact)
            assert error <= exact, f"{multiplier!r} error {error} exceeds product {exact}"

    @settings(max_examples=60, deadline=None)
    @given(a=small_operands, b=small_operands)
    def test_commutativity(self, a, b):
        for multiplier in (ExactMultiplier(8), OperandTruncationMultiplier(8, cut=3),
                           LogMultiplier(8), DrumMultiplier(8, k=3)):
            assert int(multiplier.apply(a, b)) == int(multiplier.apply(b, a))

    @settings(max_examples=40, deadline=None)
    @given(values=st.lists(small_operands, min_size=2, max_size=20))
    def test_vectorised_equals_scalar_application(self, values):
        multiplier = DrumMultiplier(8, k=3)
        a = np.array(values, dtype=np.int64)
        b = np.array(list(reversed(values)), dtype=np.int64)
        vectorised = multiplier.apply(a, b)
        scalars = np.array([int(multiplier.apply(int(x), int(y))) for x, y in zip(a, b)])
        np.testing.assert_array_equal(vectorised, scalars)
