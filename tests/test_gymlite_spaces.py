"""Tests for the gymlite observation / action spaces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gymlite import spaces


class TestDiscrete:
    def test_sample_is_contained(self):
        space = spaces.Discrete(5, seed=0)
        for _ in range(50):
            assert space.contains(space.sample())

    def test_start_offset(self):
        space = spaces.Discrete(3, start=1, seed=0)
        samples = {space.sample() for _ in range(100)}
        assert samples == {1, 2, 3}

    def test_contains_rejects_out_of_range(self):
        space = spaces.Discrete(4)
        assert not space.contains(-1)
        assert not space.contains(4)
        assert space.contains(0)
        assert space.contains(3)

    def test_contains_rejects_bool_and_float(self):
        space = spaces.Discrete(2)
        assert not space.contains(True)
        assert not space.contains(0.5)

    def test_contains_accepts_numpy_scalars(self):
        space = spaces.Discrete(4)
        assert space.contains(np.int64(2))

    def test_invalid_size_raises(self):
        with pytest.raises(ConfigurationError):
            spaces.Discrete(0)
        with pytest.raises(ConfigurationError):
            spaces.Discrete(-3)

    def test_equality(self):
        assert spaces.Discrete(4) == spaces.Discrete(4)
        assert spaces.Discrete(4) != spaces.Discrete(4, start=1)

    def test_seeding_is_reproducible(self):
        first = spaces.Discrete(100, seed=42)
        second = spaces.Discrete(100, seed=42)
        assert [first.sample() for _ in range(10)] == [second.sample() for _ in range(10)]


class TestMultiBinary:
    def test_sample_shape_and_values(self):
        space = spaces.MultiBinary(6, seed=0)
        sample = space.sample()
        assert sample.shape == (6,)
        assert set(np.unique(sample)).issubset({0, 1})

    def test_contains(self):
        space = spaces.MultiBinary(3)
        assert space.contains(np.array([0, 1, 1]))
        assert not space.contains(np.array([0, 2, 1]))
        assert not space.contains(np.array([0, 1]))

    def test_invalid_size_raises(self):
        with pytest.raises(ConfigurationError):
            spaces.MultiBinary(0)


class TestMultiDiscrete:
    def test_sample_is_contained(self):
        space = spaces.MultiDiscrete([3, 5, 2], seed=0)
        for _ in range(50):
            assert space.contains(space.sample())

    def test_contains_rejects_wrong_shape_and_range(self):
        space = spaces.MultiDiscrete([3, 5])
        assert not space.contains([3, 0])
        assert not space.contains([0, 0, 0])
        assert space.contains([2, 4])

    def test_invalid_nvec_raises(self):
        with pytest.raises(ConfigurationError):
            spaces.MultiDiscrete([])
        with pytest.raises(ConfigurationError):
            spaces.MultiDiscrete([3, 0])


class TestBox:
    def test_sample_is_contained_for_bounded_box(self):
        space = spaces.Box(low=-1.0, high=1.0, shape=(3,), seed=0)
        for _ in range(20):
            assert space.contains(space.sample())

    def test_contains_checks_bounds(self):
        space = spaces.Box(low=0.0, high=1.0, shape=(2,))
        assert space.contains(np.array([0.5, 0.5]))
        assert not space.contains(np.array([1.5, 0.5]))

    def test_unbounded_box_contains_anything_of_right_shape(self):
        space = spaces.Box(low=-np.inf, high=np.inf, shape=(3,))
        assert space.contains(np.array([1e12, -1e12, 0.0]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            spaces.Box(low=np.zeros(2), high=np.ones(3))

    def test_low_greater_than_high_raises(self):
        with pytest.raises(ConfigurationError):
            spaces.Box(low=1.0, high=0.0, shape=(1,))


class TestDictSpace:
    def _space(self, seed=None):
        return spaces.Dict(
            {
                "adder": spaces.Discrete(6, start=1),
                "variables": spaces.MultiBinary(3),
            },
            seed=seed,
        )

    def test_sample_is_contained(self):
        space = self._space(seed=0)
        for _ in range(20):
            assert space.contains(space.sample())

    def test_contains_requires_all_keys(self):
        space = self._space()
        assert not space.contains({"adder": 1})

    def test_getitem_and_len(self):
        space = self._space()
        assert isinstance(space["adder"], spaces.Discrete)
        assert len(space) == 2

    def test_empty_dict_raises(self):
        with pytest.raises(ConfigurationError):
            spaces.Dict({})

    def test_non_space_value_raises(self):
        with pytest.raises(ConfigurationError):
            spaces.Dict({"x": 3})


class TestTupleSpace:
    def test_sample_and_contains(self):
        space = spaces.Tuple([spaces.Discrete(3), spaces.MultiBinary(2)], seed=0)
        sample = space.sample()
        assert space.contains(sample)
        assert len(space) == 2

    def test_contains_rejects_wrong_length(self):
        space = spaces.Tuple([spaces.Discrete(3)])
        assert not space.contains((1, 2))

    def test_empty_tuple_raises(self):
        with pytest.raises(ConfigurationError):
            spaces.Tuple([])
