"""Tests for the campaign runtime: jobs, executors and the evaluation store.

The load-bearing guarantees:

* a ``ProcessExecutor`` campaign is entry-for-entry identical to a
  ``SerialExecutor`` campaign on the same definition;
* an ``EvaluationStore`` hit is bit-identical to a fresh evaluation;
* one failing exploration does not kill the sweep.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.agents import QLearningAgent
from repro.benchmarks import DotProductBenchmark, FirBenchmark, MatMulBenchmark
from repro.dse import Campaign, Evaluator
from repro.errors import ConfigurationError, ExplorationError
from repro.runtime import (
    AgentSpec,
    EvaluationKey,
    EvaluationStore,
    ExplorationJob,
    ProcessExecutor,
    SerialExecutor,
    benchmark_fingerprint,
    catalog_fingerprint,
    execute_job,
    expand_jobs,
)


def _qlearning_factory(environment, seed):
    """Module-level factory: picklable, usable with the process executor."""
    return QLearningAgent(num_actions=environment.action_space.n, epsilon=0.3, seed=seed)


def _crashing_factory(environment, seed):
    raise RuntimeError("boom")


def _small_benchmarks():
    return {
        "dot": DotProductBenchmark(length=12),
        "matmul": MatMulBenchmark(rows=3, inner=3, cols=3),
    }


# ---------------------------------------------------------------- fingerprints


class TestFingerprints:
    def test_benchmark_fingerprint_is_content_addressed(self):
        first = benchmark_fingerprint(DotProductBenchmark(length=12))
        second = benchmark_fingerprint(DotProductBenchmark(length=12))
        other = benchmark_fingerprint(DotProductBenchmark(length=13))
        assert first == second
        assert first != other

    def test_benchmark_fingerprint_distinguishes_kernels(self):
        matmul = benchmark_fingerprint(MatMulBenchmark(rows=3, inner=3, cols=3))
        fir = benchmark_fingerprint(FirBenchmark(num_samples=20, num_taps=4))
        assert matmul != fir

    def test_catalog_fingerprint_tracks_restriction(self, catalog):
        full = catalog_fingerprint(catalog)
        restricted = catalog_fingerprint(catalog.restrict_widths(adder_width=8,
                                                                 multiplier_width=8))
        assert full != restricted
        assert catalog_fingerprint(catalog) == full


# ----------------------------------------------------------------------- store


class TestEvaluationStore:
    def test_get_put_and_stats(self, matmul_evaluator):
        store = EvaluationStore()
        point = matmul_evaluator.design_space.most_aggressive_point()
        key = EvaluationKey(*matmul_evaluator.store_context, point=point.key())
        assert store.get(key) is None
        record = matmul_evaluator.evaluate(point)
        store.put(key, record)
        assert store.get(key) is record
        assert store.stats.hits == 1 and store.stats.misses == 1
        assert store.hit_rate == pytest.approx(0.5)

    def test_store_hit_is_bit_identical_to_fresh_evaluation(self, small_matmul):
        store = EvaluationStore()
        warm_source = Evaluator(small_matmul, seed=0, store=store)
        fresh = Evaluator(MatMulBenchmark(rows=4, inner=4, cols=4), seed=0)
        for point in (fresh.design_space.most_aggressive_point(),
                      fresh.design_space.initial_point()):
            warmed = Evaluator(MatMulBenchmark(rows=4, inner=4, cols=4), seed=0, store=store)
            expected = fresh.evaluate(point)
            warm_source.evaluate(point)
            served = warmed.evaluate(point)
            # The record comes out of the store (same object as the sibling's),
            # and every measured quantity is bit-identical to a fresh evaluation.
            assert served is warm_source.evaluate(point)
            assert served.deltas == expected.deltas
            assert served.approx_cost == expected.approx_cost
            np.testing.assert_array_equal(served.outputs, expected.outputs)

    def test_different_seed_or_benchmark_never_shares_entries(self, small_matmul):
        store = EvaluationStore()
        point = Evaluator(small_matmul, seed=0, store=store).design_space.initial_point()
        Evaluator(small_matmul, seed=0, store=store).evaluate(point)
        other_seed = Evaluator(MatMulBenchmark(rows=4, inner=4, cols=4), seed=1, store=store)
        other_seed.evaluate(point)
        assert len(store) == 2  # distinct contexts, no collision

    def test_merge_keeps_incumbent_and_counts_new(self, matmul_evaluator):
        store = EvaluationStore()
        point = matmul_evaluator.design_space.initial_point()
        key = matmul_evaluator.store_key(point)
        record = matmul_evaluator.evaluate(point)
        store.put(key, record)
        other = EvaluationStore()
        other.put(key, matmul_evaluator.evaluate(point))
        assert store.merge(other) == 0
        assert store.get(key) is record

    def test_sqlite_round_trip(self, tmp_path, small_matmul):
        path = tmp_path / "evaluations.sqlite"
        store = EvaluationStore(path=path)
        evaluator = Evaluator(small_matmul, seed=0, store=store, store_outputs=False)
        expected = evaluator.evaluate(evaluator.design_space.most_aggressive_point())
        assert store.flush() == 1

        reloaded = EvaluationStore(path=path)
        assert len(reloaded) == 1
        # An outputs-retaining evaluator cannot be served the outputs-less
        # record: that lookup is an upgrade (re-evaluation), not a hit.
        warmed = Evaluator(MatMulBenchmark(rows=4, inner=4, cols=4), seed=0, store=reloaded)
        served = warmed.evaluate(warmed.design_space.most_aggressive_point())
        assert served.deltas == expected.deltas
        assert served.approx_cost == expected.approx_cost
        assert reloaded.stats.hits == 0
        assert reloaded.stats.upgrades == 1
        # A sibling that also drops outputs is satisfied by the upgraded
        # entry: a genuine hit.
        lighter = Evaluator(MatMulBenchmark(rows=4, inner=4, cols=4), seed=0,
                            store=reloaded, store_outputs=False)
        lighter.evaluate(lighter.design_space.most_aggressive_point())
        assert reloaded.stats.hits == 1

    def test_flush_after_clear_does_not_resurrect_records(self, tmp_path, small_matmul):
        path = tmp_path / "evaluations.sqlite"
        store = EvaluationStore(path=path)
        evaluator = Evaluator(small_matmul, seed=0, store=store)
        evaluator.evaluate(evaluator.design_space.initial_point())
        store.flush()
        store.clear()
        assert store.flush() == 0
        assert len(EvaluationStore(path=path)) == 0

    def test_outputs_retaining_evaluator_upgrades_outputs_less_records(self, small_matmul):
        store = EvaluationStore()
        dropper = Evaluator(small_matmul, seed=0, store=store, store_outputs=False)
        point = dropper.design_space.most_aggressive_point()
        assert dropper.evaluate(point).outputs is None
        keeper = Evaluator(MatMulBenchmark(rows=4, inner=4, cols=4), seed=0, store=store)
        upgraded = keeper.evaluate(point)
        assert upgraded.outputs is not None  # re-evaluated, not served stale
        assert store.get(keeper.store_key(point)).outputs is not None

    def test_cache_size_counts_only_own_lookups(self, small_matmul):
        store = EvaluationStore()
        first = Evaluator(small_matmul, seed=0, store=store, store_outputs=False)
        first.evaluate(first.design_space.initial_point())
        first.evaluate(first.design_space.most_aggressive_point())
        sibling = Evaluator(small_matmul, seed=0, store=store, store_outputs=False)
        sibling.evaluate(sibling.design_space.initial_point())
        assert first.cache_size == 2
        assert sibling.cache_size == 1  # warm entries don't inflate the count

    def test_clear_context_only_drops_one_evaluator(self, small_matmul):
        store = EvaluationStore()
        first = Evaluator(small_matmul, seed=0, store=store)
        second = Evaluator(small_matmul, seed=1, store=store)
        first.evaluate(first.design_space.initial_point())
        second.evaluate(second.design_space.initial_point())
        first.clear_cache()
        assert first.cache_size == 0
        assert second.cache_size == 1


# ------------------------------------------------------------------------ jobs


class TestJobs:
    def test_expand_jobs_order_and_determinism(self):
        jobs = expand_jobs(_small_benchmarks(),
                           [AgentSpec("q-learning"), AgentSpec("random")],
                           seeds=(0, 1), max_steps=10)
        identity = [(job.benchmark_label, job.agent.name, job.seed) for job in jobs]
        assert identity == [
            ("dot", "q-learning", 0), ("dot", "q-learning", 1),
            ("dot", "random", 0), ("dot", "random", 1),
            ("matmul", "q-learning", 0), ("matmul", "q-learning", 1),
            ("matmul", "random", 0), ("matmul", "random", 1),
        ]

    def test_jobs_are_picklable(self):
        jobs = expand_jobs(_small_benchmarks(), AgentSpec("sarsa"), seeds=(0,), max_steps=10)
        restored = pickle.loads(pickle.dumps(jobs))
        assert [job.describe() for job in restored] == [job.describe() for job in jobs]

    def test_factory_spec_is_picklable_when_module_level(self):
        spec = AgentSpec.from_factory(_qlearning_factory)
        assert pickle.loads(pickle.dumps(spec)).factory is _qlearning_factory

    def test_unknown_agent_name_raises(self):
        with pytest.raises(ConfigurationError):
            AgentSpec("annealing")

    def test_empty_expansion_raises(self):
        with pytest.raises(ExplorationError):
            expand_jobs({}, AgentSpec("random"))
        with pytest.raises(ExplorationError):
            expand_jobs(_small_benchmarks(), AgentSpec("random"), seeds=())
        with pytest.raises(ExplorationError):
            expand_jobs(_small_benchmarks(), [], seeds=(0,))

    def test_execute_job_matches_direct_exploration(self, dot_benchmark):
        from repro.dse import AxcDseEnv, Explorer

        job = ExplorationJob(benchmark_label="dot", benchmark=dot_benchmark, seed=3,
                             agent=AgentSpec.from_factory(_qlearning_factory), max_steps=25)
        via_job = execute_job(job)
        environment = AxcDseEnv(dot_benchmark, evaluation_seed=3)
        direct = Explorer(environment, _qlearning_factory(environment, 3),
                          max_steps=25).run(seed=3)
        assert [r.point for r in via_job.records] == [r.point for r in direct.records]
        assert [r.deltas for r in via_job.records] == [r.deltas for r in direct.records]


# ------------------------------------------------------------------- executors


class TestExecutors:
    def test_serial_executor_captures_per_job_errors(self, dot_benchmark):
        jobs = [
            ExplorationJob(benchmark_label="bad", benchmark=dot_benchmark, seed=0,
                           agent=AgentSpec.from_factory(_crashing_factory), max_steps=10),
            ExplorationJob(benchmark_label="good", benchmark=dot_benchmark, seed=0,
                           agent=AgentSpec("random"), max_steps=10),
        ]
        outcomes = SerialExecutor().run(jobs)
        assert not outcomes[0].ok and "boom" in outcomes[0].error
        assert outcomes[1].ok and outcomes[1].result.num_steps == 11

    def test_captured_errors_carry_job_identity_and_full_traceback(self, dot_benchmark):
        # A failed shard must be debuggable from the report alone: the
        # outcome error names the job and keeps the whole traceback, not
        # just the exception repr.
        job = ExplorationJob(benchmark_label="bad", benchmark=dot_benchmark, seed=7,
                             agent=AgentSpec.from_factory(_crashing_factory),
                             max_steps=10)
        for executor in (SerialExecutor(), ProcessExecutor(n_jobs=2)):
            outcome = executor.run([job, job])[0]
            assert not outcome.ok
            assert job.describe() in outcome.error
            assert "Traceback (most recent call last)" in outcome.error
            assert "RuntimeError" in outcome.error and "boom" in outcome.error

    def test_process_executor_matches_serial_entry_for_entry(self):
        campaign_kwargs = dict(
            benchmarks=_small_benchmarks(),
            agent_factory=AgentSpec("q-learning"),
            max_steps=30,
            seeds=(0, 1, 2),
        )
        serial = Campaign(executor=SerialExecutor(), **campaign_kwargs).run()
        parallel = Campaign(executor=ProcessExecutor(n_jobs=2), **campaign_kwargs).run()
        assert len(serial) == len(parallel) == 6
        for left, right in zip(serial, parallel):
            assert (left.benchmark_label, left.seed) == (right.benchmark_label, right.seed)
            assert [r.deltas for r in left.result.records] == \
                [r.deltas for r in right.result.records]
            assert [r.point for r in left.result.records] == \
                [r.point for r in right.result.records]
            assert left.result.solution.point == right.result.solution.point

    def test_process_executor_captures_errors_without_killing_sweep(self, dot_benchmark):
        jobs = [
            ExplorationJob(benchmark_label="bad", benchmark=dot_benchmark, seed=0,
                           agent=AgentSpec.from_factory(_crashing_factory), max_steps=10),
            ExplorationJob(benchmark_label="good", benchmark=dot_benchmark, seed=0,
                           agent=AgentSpec("random"), max_steps=10),
        ]
        outcomes = ProcessExecutor(n_jobs=2).run(jobs)
        assert not outcomes[0].ok and "boom" in outcomes[0].error
        assert outcomes[1].ok and outcomes[1].result.num_steps == 11

    def test_process_executor_merges_worker_evaluations(self):
        store = EvaluationStore()
        jobs = expand_jobs({"dot": DotProductBenchmark(length=12)}, AgentSpec("random"),
                           seeds=(0, 1), max_steps=20)
        ProcessExecutor(n_jobs=2).run(jobs, store=store)
        assert len(store) > 0

    def test_warm_store_produces_hits_across_runs(self):
        store = EvaluationStore()
        jobs = expand_jobs({"dot": DotProductBenchmark(length=12)}, AgentSpec("random"),
                           seeds=(0,), max_steps=20)
        SerialExecutor().run(jobs, store=store)
        size_after_first = len(store)
        before = store.stats
        outcomes = ProcessExecutor(n_jobs=2).run(
            expand_jobs({"dot": DotProductBenchmark(length=12)}, AgentSpec("q-learning"),
                        seeds=(0,), max_steps=20),
            store=store,
        )
        assert outcomes[0].ok
        assert store.stats.hits > before.hits  # cross-run reuse actually happened
        assert len(store) >= size_after_first

    def test_invalid_n_jobs_raises(self):
        with pytest.raises(ConfigurationError):
            ProcessExecutor(n_jobs=0)
        with pytest.raises(ConfigurationError):
            ProcessExecutor(mp_context="not-a-method")


# -------------------------------------------------------------------- campaign


class TestCampaignRuntime:
    def test_campaign_drops_outputs_from_cached_records_by_default(self):
        campaign = Campaign(benchmarks={"dot": DotProductBenchmark(length=12)},
                            agent_factory=AgentSpec("random"), max_steps=15, seeds=(0,))
        campaign.run()
        records = list(campaign.store.snapshot().values())
        assert records
        assert all(record.outputs is None for record in records)

    def test_campaign_run_reports_all_failures_after_running_everything(self):
        campaign = Campaign(
            benchmarks={"dot": DotProductBenchmark(length=12)},
            agent_factory=_crashing_factory,
            max_steps=10,
            seeds=(0, 1),
        )
        with pytest.raises(ExplorationError, match="2 of 2"):
            campaign.run()
        outcomes = campaign.run_outcomes()
        assert len(outcomes) == 2 and all(not outcome.ok for outcome in outcomes)

    def test_summarize_empty_entries_returns_empty_dict(self):
        assert Campaign.summarize([]) == {}

    def test_explorer_progress_callback_sees_every_step(self, dot_benchmark):
        from repro.dse import AxcDseEnv, Explorer

        environment = AxcDseEnv(dot_benchmark, evaluation_seed=0)
        seen = []
        result = Explorer(environment, _qlearning_factory(environment, 0), max_steps=12,
                          on_step=seen.append).run(seed=0)
        assert len(seen) == result.num_steps
        assert [record.step for record in seen] == [record.step for record in result.records]


# ------------------------------------------------------------------------- cli


class TestCampaignCli:
    def test_campaign_subcommand_serial(self, capsys):
        from repro.cli import main

        exit_code = main(["campaign", "--benchmarks", "dotproduct", "--seeds", "0",
                          "--agents", "random", "--steps", "15"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Agent random" in captured
        assert "Evaluation store" in captured

    def test_campaign_subcommand_persists_store(self, tmp_path, capsys):
        from repro.cli import main

        store_path = str(tmp_path / "store.sqlite")
        assert main(["campaign", "--benchmarks", "dotproduct", "--seeds", "0",
                     "--agents", "random", "--steps", "15", "--store", store_path]) == 0
        capsys.readouterr()
        assert main(["campaign", "--benchmarks", "dotproduct", "--seeds", "0",
                     "--agents", "random", "--steps", "15", "--store", store_path]) == 0
        captured = capsys.readouterr().out
        assert "store warm with" in captured
        assert "(100 % hit rate)" in captured


class TestBaselineJobs:
    """Baseline explorers run as first-class jobs through both executors."""

    def test_expand_jobs_accepts_baseline_specs(self):
        jobs = expand_jobs({"dot": DotProductBenchmark(length=12)},
                           [AgentSpec("q-learning"), AgentSpec("simulated-annealing"),
                            AgentSpec("exhaustive")],
                           seeds=(0,), max_steps=15)
        assert [job.agent.name for job in jobs] == \
            ["q-learning", "simulated-annealing", "exhaustive"]

    def test_baseline_jobs_identical_across_executors(self):
        jobs = expand_jobs({"dot": DotProductBenchmark(length=12)},
                           [AgentSpec("hill-climbing"), AgentSpec("genetic")],
                           seeds=(0, 1), max_steps=20)
        serial = SerialExecutor().run(jobs, store=EvaluationStore())
        process = ProcessExecutor(n_jobs=2).run(jobs, store=EvaluationStore())
        assert all(outcome.ok for outcome in serial + process)
        for left, right in zip(serial, process):
            assert left.result.agent_name == right.result.agent_name
            assert [r.deltas for r in left.result.records] == \
                [r.deltas for r in right.result.records]

    def test_baseline_rejects_random_start(self):
        jobs = expand_jobs({"dot": DotProductBenchmark(length=12)},
                           AgentSpec("hill-climbing"), seeds=(0,), max_steps=15,
                           random_start=True)
        with pytest.raises(ConfigurationError, match="random_start"):
            execute_job(jobs[0])

    def test_baseline_evaluations_populate_the_shared_store(self):
        store = EvaluationStore()
        jobs = expand_jobs({"dot": DotProductBenchmark(length=12)},
                           AgentSpec("hill-climbing"), seeds=(0,), max_steps=15)
        SerialExecutor().run(jobs, store=store)
        assert len(store) > 0
        # A second run over the same definition is served from the store.
        SerialExecutor().run(jobs, store=store)
        assert store.stats.hits > 0
