"""Tests for the approximation context, operation profile and ApproxValue."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InstrumentationError, OperatorError
from repro.instrumentation import ApproxContext, ApproxValue, OperationProfile
from repro.operators import ExactAdder, ExactMultiplier, OperandTruncationMultiplier, TruncatedAdder


@pytest.fixture
def exact_units():
    return ExactAdder(8, name="exact_add"), ExactMultiplier(8, name="exact_mul")


@pytest.fixture
def approx_units():
    return (
        TruncatedAdder(8, cut=3, name="approx_add"),
        OperandTruncationMultiplier(8, cut=3, name="approx_mul"),
    )


class TestOperationProfile:
    def test_record_and_count(self):
        profile = OperationProfile()
        profile.record("unit_a", 10)
        profile.record("unit_a", 5)
        profile.record("unit_b", 1)
        assert profile.count("unit_a") == 15
        assert profile.count("unit_b") == 1
        assert profile.count("unit_c") == 0
        assert profile.total_operations == 16

    def test_zero_count_is_ignored(self):
        profile = OperationProfile()
        profile.record("unit_a", 0)
        assert len(profile) == 0

    def test_negative_count_raises(self):
        with pytest.raises(InstrumentationError):
            OperationProfile().record("unit_a", -1)

    def test_merge(self):
        first = OperationProfile()
        first.record("unit_a", 2)
        second = OperationProfile()
        second.record("unit_a", 3)
        second.record("unit_b", 1)
        merged = first.merge(second)
        assert merged.count("unit_a") == 5
        assert merged.count("unit_b") == 1
        assert first.count("unit_a") == 2  # originals untouched

    def test_as_dict_and_clear(self):
        profile = OperationProfile()
        profile.record("unit_a", 2)
        assert profile.as_dict() == {"unit_a": 2}
        profile.clear()
        assert profile.total_operations == 0

    def test_equality(self):
        first = OperationProfile()
        second = OperationProfile()
        first.record("x", 1)
        second.record("x", 1)
        assert first == second


class TestApproxContext:
    def test_precise_context_uses_exact_units(self, exact_units, approx_units):
        exact_adder, exact_multiplier = exact_units
        context = ApproxContext(exact_adder, exact_multiplier)
        result = context.add(3, 4, variables=("x",))
        assert int(result) == 7
        assert context.profile.count("exact_add") == 1
        assert context.is_precise

    def test_approximate_dispatch_on_selected_variable(self, exact_units, approx_units):
        exact_adder, exact_multiplier = exact_units
        approx_adder, approx_multiplier = approx_units
        context = ApproxContext(exact_adder, exact_multiplier, approx_adder, approx_multiplier,
                                approximate_variables=("x",))
        context.add(100, 27, variables=("x",))
        context.add(100, 27, variables=("y",))
        assert context.profile.count("approx_add") == 1
        assert context.profile.count("exact_add") == 1

    def test_any_selected_variable_triggers_approximation(self, exact_units, approx_units):
        exact_adder, exact_multiplier = exact_units
        approx_adder, approx_multiplier = approx_units
        context = ApproxContext(exact_adder, exact_multiplier, approx_adder, approx_multiplier,
                                approximate_variables=("x",))
        context.mul(10, 20, variables=("y", "x"))
        assert context.profile.count("approx_mul") == 1

    def test_vectorised_operations_count_elements(self, exact_units):
        exact_adder, exact_multiplier = exact_units
        context = ApproxContext(exact_adder, exact_multiplier)
        context.add(np.arange(10), np.arange(10))
        context.mul(np.arange(6).reshape(2, 3), 2)
        assert context.profile.count("exact_add") == 10
        assert context.profile.count("exact_mul") == 6

    def test_sub_uses_the_adder(self, exact_units):
        exact_adder, exact_multiplier = exact_units
        context = ApproxContext(exact_adder, exact_multiplier)
        result = context.sub(10, 4)
        assert int(result) == 6
        assert context.profile.count("exact_add") == 1

    def test_sub_rejects_boolean_operand_with_operator_error(self, exact_units):
        # Regression: sub negated b before validation, so booleans hit a raw
        # NumPy TypeError instead of the OperatorError add/mul raise.
        exact_adder, exact_multiplier = exact_units
        context = ApproxContext(exact_adder, exact_multiplier)
        with pytest.raises(OperatorError):
            context.sub(10, np.array([True, False]))
        with pytest.raises(OperatorError):
            context.sub(10, True)

    def test_sub_rejects_non_integral_float_with_operator_error(self, exact_units):
        exact_adder, exact_multiplier = exact_units
        context = ApproxContext(exact_adder, exact_multiplier)
        with pytest.raises(OperatorError):
            context.sub(10, 0.5)
        with pytest.raises(OperatorError):
            context.sub(10, np.array([1.0, 2.5]))

    def test_sub_accepts_integral_floats(self, exact_units):
        exact_adder, exact_multiplier = exact_units
        context = ApproxContext(exact_adder, exact_multiplier)
        result = context.sub(10, np.array([2.0, 4.0]))
        np.testing.assert_array_equal(result, np.array([8, 6]))

    def test_accumulate_counts_chain_of_adds(self, exact_units):
        exact_adder, exact_multiplier = exact_units
        context = ApproxContext(exact_adder, exact_multiplier)
        values = np.arange(12).reshape(4, 3)
        totals = context.accumulate(values, axis=0)
        np.testing.assert_array_equal(totals, values.sum(axis=0))
        assert context.profile.count("exact_add") == 4 * 3

    def test_accumulate_empty_raises(self, exact_units):
        exact_adder, exact_multiplier = exact_units
        context = ApproxContext(exact_adder, exact_multiplier)
        with pytest.raises(InstrumentationError):
            context.accumulate(np.empty((0,), dtype=np.int64))

    def test_reset_profile(self, exact_units):
        exact_adder, exact_multiplier = exact_units
        context = ApproxContext(exact_adder, exact_multiplier)
        context.add(1, 2)
        context.reset_profile()
        assert context.profile.total_operations == 0

    def test_kind_mismatch_raises(self, exact_units):
        exact_adder, exact_multiplier = exact_units
        with pytest.raises(InstrumentationError):
            ApproxContext(exact_multiplier, exact_adder)

    def test_no_variables_selected_is_precise(self, exact_units, approx_units):
        exact_adder, exact_multiplier = exact_units
        approx_adder, approx_multiplier = approx_units
        context = ApproxContext(exact_adder, exact_multiplier, approx_adder, approx_multiplier)
        assert context.is_precise
        context.add(5, 5, variables=("x",))
        assert context.profile.count("exact_add") == 1


class TestTrustedContext:
    def _contexts(self, exact_units, approx_units, selected=("x",)):
        exact_adder, exact_multiplier = exact_units
        approx_adder, approx_multiplier = approx_units
        untrusted = ApproxContext(exact_adder, exact_multiplier, approx_adder,
                                  approx_multiplier, approximate_variables=selected)
        trusted = ApproxContext(exact_adder, exact_multiplier, approx_adder,
                                approx_multiplier, approximate_variables=selected,
                                trusted=True)
        return untrusted, trusted

    def test_trusted_flag_is_exposed(self, exact_units):
        exact_adder, exact_multiplier = exact_units
        assert not ApproxContext(exact_adder, exact_multiplier).trusted
        assert ApproxContext(exact_adder, exact_multiplier, trusted=True).trusted

    def test_trusted_results_match_untrusted(self, exact_units, approx_units):
        untrusted, trusted = self._contexts(exact_units, approx_units)
        rng = np.random.default_rng(0)
        a = rng.integers(-1000, 1000, size=(8, 1))
        b = rng.integers(-1000, 1000, size=(1, 8))
        for variables in (("x",), ("y",)):
            np.testing.assert_array_equal(
                untrusted.add(a, b, variables=variables),
                trusted.add(a, b, variables=variables),
            )
            np.testing.assert_array_equal(
                untrusted.mul(a, b, variables=variables),
                trusted.mul(a, b, variables=variables),
            )
            np.testing.assert_array_equal(
                untrusted.sub(a, b, variables=variables),
                trusted.sub(a, b, variables=variables),
            )
        assert untrusted.profile == trusted.profile

    def test_trusted_broadcasting_counts_full_result(self, exact_units, approx_units):
        _, trusted = self._contexts(exact_units, approx_units)
        trusted.add(np.zeros((4, 1), dtype=np.int64), np.zeros((1, 5), dtype=np.int64))
        assert trusted.profile.count("exact_add") == 20

    def test_trusted_scalar_operations(self, exact_units, approx_units):
        _, trusted = self._contexts(exact_units, approx_units)
        assert int(trusted.add(3, 4)) == 7
        assert int(trusted.mul(3, 4)) == 12
        assert int(trusted.sub(9, 4)) == 5


class TestApproxValue:
    def _context(self, exact_units, approx_units, selected=("x",)):
        exact_adder, exact_multiplier = exact_units
        approx_adder, approx_multiplier = approx_units
        return ApproxContext(exact_adder, exact_multiplier, approx_adder, approx_multiplier,
                             approximate_variables=selected)

    def test_tagged_arithmetic_dispatches_to_context(self, exact_units, approx_units):
        context = self._context(exact_units, approx_units)
        x = ApproxValue(context, "x", 40)
        y = ApproxValue(context, "y", 3)
        product = x * y
        assert context.profile.count("approx_mul") == 1
        assert isinstance(product, ApproxValue)
        assert product.variable is None

    def test_untagged_arithmetic_stays_exact(self, exact_units, approx_units):
        context = self._context(exact_units, approx_units)
        y = ApproxValue(context, "y", 40)
        z = ApproxValue(context, "z", 3)
        result = y + z
        assert context.profile.count("exact_add") == 1
        assert int(result) == 43

    def test_mixing_with_plain_ints(self, exact_units, approx_units):
        context = self._context(exact_units, approx_units)
        x = ApproxValue(context, "x", 10)
        assert int(x + 5) == 15 or context.profile.count("approx_add") == 1
        assert int(3 * ApproxValue(context, "y", 4)) == 12

    def test_subtraction_and_negation(self, exact_units, approx_units):
        context = self._context(exact_units, approx_units, selected=())
        a = ApproxValue(context, "a", 10)
        b = ApproxValue(context, "b", 4)
        assert int(a - b) == 6
        assert int(-b) == -4

    def test_retag(self, exact_units, approx_units):
        context = self._context(exact_units, approx_units)
        value = ApproxValue(context, None, 7).retag("acc")
        assert value.variable == "acc"

    def test_cross_context_mix_raises(self, exact_units, approx_units):
        first = self._context(exact_units, approx_units)
        second = self._context(exact_units, approx_units)
        with pytest.raises(InstrumentationError):
            ApproxValue(first, "x", 1) + ApproxValue(second, "x", 2)

    def test_non_integer_value_raises(self, exact_units, approx_units):
        context = self._context(exact_units, approx_units)
        with pytest.raises(InstrumentationError):
            ApproxValue(context, "x", 1.5)

    def test_scalar_conversion_of_vector_raises(self, exact_units, approx_units):
        context = self._context(exact_units, approx_units)
        vector = ApproxValue(context, "x", np.arange(3))
        with pytest.raises(InstrumentationError):
            int(vector)

    def test_array_conversion(self, exact_units, approx_units):
        context = self._context(exact_units, approx_units)
        vector = ApproxValue(context, "x", np.arange(3))
        np.testing.assert_array_equal(np.asarray(vector), np.arange(3))
