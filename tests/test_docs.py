"""Documentation health checks: relative links resolve, docs stay wired up.

These run in the tier-1 suite *and* in the CI docs job, so a README
restructure or a moved file cannot silently leave dangling links behind.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — good enough for the plain links these docs use.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _documents():
    docs = [REPO_ROOT / "README.md"]
    docs.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return docs


def _relative_links(document: Path):
    for match in _LINK.finditer(document.read_text()):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target


@pytest.mark.parametrize("document", _documents(), ids=lambda p: p.name)
def test_relative_links_resolve(document):
    missing = []
    for target in _relative_links(document):
        path = target.split("#", 1)[0]
        if not path:
            continue
        if not (document.parent / path).exists():
            missing.append(target)
    assert not missing, (
        f"{document.relative_to(REPO_ROOT)} has broken relative link(s): {missing}"
    )


def test_docs_exist_and_are_linked():
    architecture = REPO_ROOT / "docs" / "ARCHITECTURE.md"
    assert architecture.exists(), "docs/ARCHITECTURE.md is missing"
    readme = (REPO_ROOT / "README.md").read_text()
    assert "docs/ARCHITECTURE.md" in readme, (
        "README must link to docs/ARCHITECTURE.md"
    )


def test_readme_documents_every_cli_subcommand():
    from repro.cli import build_parser

    readme = (REPO_ROOT / "README.md").read_text()
    parser = build_parser()
    subparsers = next(
        action for action in parser._actions
        if action.__class__.__name__ == "_SubParsersAction"
    )
    undocumented = [name for name in subparsers.choices
                    if f"repro-axc {name}" not in readme]
    assert not undocumented, (
        f"README's CLI reference is missing subcommand(s): {undocumented}"
    )


def test_checked_in_example_specs_are_valid():
    import json

    from repro.experiments import ExperimentSpec

    examples = sorted((REPO_ROOT / "examples").glob("experiment_*.json"))
    kinds = set()
    for path in examples:
        spec = ExperimentSpec.from_dict(json.loads(path.read_text()))
        assert spec.fingerprint()
        kinds.add(spec.kind)
    # One runnable example document per experiment kind.
    assert kinds == {"explore", "compare", "campaign", "sweep"}
