"""Tests for the non-RL baseline explorers."""

from __future__ import annotations

import pytest

from repro.agents.baselines import (
    BaselineRecorder,
    ExhaustiveExplorer,
    GeneticExplorer,
    HillClimbingExplorer,
    SimulatedAnnealingExplorer,
    default_thresholds,
    fitness,
)
from repro.dse import ExplorationThresholds
from repro.errors import ConfigurationError
from repro.metrics import ObjectiveDeltas


@pytest.fixture
def thresholds(matmul_evaluator):
    return default_thresholds(matmul_evaluator)


class TestFitness:
    def test_feasible_points_score_normalised_gains(self):
        thresholds = ExplorationThresholds(accuracy=10.0, power_mw=10.0, time_ns=10.0)
        value = fitness(ObjectiveDeltas(accuracy=5.0, power_mw=20.0, time_ns=10.0), thresholds)
        assert value == pytest.approx(3.0)

    def test_infeasible_points_score_negative(self):
        thresholds = ExplorationThresholds(accuracy=10.0, power_mw=10.0, time_ns=10.0)
        value = fitness(ObjectiveDeltas(accuracy=30.0, power_mw=100.0, time_ns=100.0), thresholds)
        assert value == pytest.approx(-3.0)

    def test_better_gains_rank_higher(self):
        thresholds = ExplorationThresholds(accuracy=10.0, power_mw=10.0, time_ns=10.0)
        weak = fitness(ObjectiveDeltas(accuracy=0.0, power_mw=5.0, time_ns=5.0), thresholds)
        strong = fitness(ObjectiveDeltas(accuracy=0.0, power_mw=50.0, time_ns=50.0), thresholds)
        assert strong > weak

    def test_default_thresholds_match_environment_derivation(self, matmul_evaluator, thresholds):
        assert thresholds.power_mw == pytest.approx(
            0.5 * matmul_evaluator.precise_cost.power_mw
        )


class TestBaselineRecorder:
    def test_records_are_appended_per_evaluation(self, matmul_evaluator, thresholds):
        recorder = BaselineRecorder(matmul_evaluator, thresholds, "test")
        space = matmul_evaluator.design_space
        recorder.evaluate(space.initial_point())
        recorder.evaluate(space.most_aggressive_point())
        assert recorder.num_evaluations == 2
        result = recorder.result()
        assert result.num_steps == 2
        assert result.agent_name == "test"

    def test_seed_evaluation_can_be_marked_baseline(self, matmul_evaluator, thresholds):
        recorder = BaselineRecorder(matmul_evaluator, thresholds, "test")
        space = matmul_evaluator.design_space
        recorder.evaluate(space.initial_point(), is_baseline=True)
        recorder.evaluate(space.most_aggressive_point())
        result = recorder.result()
        assert [record.is_baseline for record in result.records] == [True, False]

    @pytest.mark.parametrize("explorer_class", [
        HillClimbingExplorer, SimulatedAnnealingExplorer,
    ])
    def test_seeded_searches_mark_their_do_nothing_start(self, matmul_evaluator,
                                                         explorer_class):
        # Hill climbing and annealing seed at the precise configuration; like
        # the explorer's step 0, that record earns no feasibility credit.
        result = explorer_class(matmul_evaluator, max_evaluations=20, seed=0).run()
        assert result.records[0].is_baseline
        assert all(not record.is_baseline for record in result.records[1:])

    def test_result_appends_best_point_as_solution(self, matmul_evaluator, thresholds):
        recorder = BaselineRecorder(matmul_evaluator, thresholds, "test")
        space = matmul_evaluator.design_space
        recorder.evaluate(space.initial_point())
        best = space.most_aggressive_point()
        result = recorder.result(best_point=best)
        assert result.solution.point == best


class TestBaselineExplorers:
    @pytest.mark.parametrize("explorer_class,kwargs", [
        (SimulatedAnnealingExplorer, {"max_evaluations": 60, "seed": 0}),
        (HillClimbingExplorer, {"max_evaluations": 60, "seed": 0}),
        (GeneticExplorer, {"population_size": 6, "generations": 5, "seed": 0}),
    ])
    def test_explorers_produce_traces_and_find_feasible_points(self, matmul_evaluator,
                                                               explorer_class, kwargs):
        explorer = explorer_class(matmul_evaluator, **kwargs)
        result = explorer.run()
        assert result.num_steps > 1
        assert result.agent_name == explorer.name
        best = result.best_feasible()
        assert best is not None
        assert best.deltas.accuracy <= result.thresholds.accuracy

    def test_exhaustive_covers_the_whole_space(self, matmul_evaluator):
        result = ExhaustiveExplorer(matmul_evaluator).run()
        space_size = matmul_evaluator.design_space.size
        # Every distinct point once, plus possibly the repeated best solution.
        assert space_size <= result.num_steps <= space_size + 1

    def test_exhaustive_budget_is_respected(self, matmul_evaluator):
        result = ExhaustiveExplorer(matmul_evaluator, max_evaluations=10).run()
        assert result.num_steps <= 11

    def test_exhaustive_solution_dominates_other_baselines(self, matmul_evaluator):
        thresholds = default_thresholds(matmul_evaluator)
        exhaustive = ExhaustiveExplorer(matmul_evaluator, thresholds).run()
        annealing = SimulatedAnnealingExplorer(matmul_evaluator, thresholds,
                                               max_evaluations=50, seed=0).run()
        best_exhaustive = fitness(exhaustive.solution.deltas, thresholds)
        best_annealing = fitness(annealing.solution.deltas, thresholds)
        assert best_exhaustive >= best_annealing - 1e-9

    def test_deterministic_given_seed(self, matmul_evaluator, thresholds):
        first = SimulatedAnnealingExplorer(matmul_evaluator, thresholds,
                                           max_evaluations=40, seed=5).run()
        second = SimulatedAnnealingExplorer(matmul_evaluator, thresholds,
                                            max_evaluations=40, seed=5).run()
        assert [record.point.key() for record in first.records] == \
               [record.point.key() for record in second.records]

    def test_parameter_validation(self, matmul_evaluator):
        with pytest.raises(ConfigurationError):
            SimulatedAnnealingExplorer(matmul_evaluator, max_evaluations=0)
        with pytest.raises(ConfigurationError):
            SimulatedAnnealingExplorer(matmul_evaluator, cooling_rate=1.5)
        with pytest.raises(ConfigurationError):
            GeneticExplorer(matmul_evaluator, population_size=1)
        with pytest.raises(ConfigurationError):
            GeneticExplorer(matmul_evaluator, mutation_rate=2.0)
        with pytest.raises(ConfigurationError):
            HillClimbingExplorer(matmul_evaluator, max_evaluations=-5)
        with pytest.raises(ConfigurationError):
            ExhaustiveExplorer(matmul_evaluator, max_evaluations=0)
