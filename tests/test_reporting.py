"""Tests for the paper-artifact pipeline (:mod:`repro.reporting`)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import ConfigurationError, ReportingError
from repro.experiments import ExperimentSpec, run_experiment
from repro.reporting import (
    Artifact,
    ArtifactSpec,
    PaperPipeline,
    paper_artifact_names,
    paper_artifacts,
    register_renderer,
    renderer_names,
)
from repro.reporting.pipeline import select_artifacts


def _smoke_campaign(**overrides) -> ExperimentSpec:
    payload = {
        "kind": "campaign",
        "benchmarks": ["dotproduct:length=8"],
        "agents": ["q-learning"],
        "seeds": [0],
        "max_steps": 10,
    }
    payload.update(overrides)
    return ExperimentSpec.from_dict(payload)


@pytest.fixture(scope="module")
def campaign_report():
    """One tiny finished campaign report shared by the renderer tests."""
    return run_experiment(_smoke_campaign())


class TestArtifact:
    def test_rejects_bad_kind_and_empty_markdown(self):
        with pytest.raises(ConfigurationError):
            Artifact(name="t", title="T", kind="poster", markdown="x")
        with pytest.raises(ConfigurationError):
            Artifact(name="t", title="T", kind="table", markdown="")

    def test_rejects_non_json_data(self):
        with pytest.raises(ConfigurationError):
            Artifact(name="t", title="T", kind="table", markdown="x",
                     data={"bad": object()})

    def test_write_is_byte_stable(self, tmp_path):
        artifact = Artifact(name="t1", title="T", kind="table",
                            markdown="# T\n\nbody", data={"b": 2, "a": 1})
        files = artifact.write(tmp_path)
        assert files == ["t1.md", "t1.json"]
        first = [(tmp_path / name).read_bytes() for name in files]
        artifact.write(tmp_path)
        assert [(tmp_path / name).read_bytes() for name in files] == first
        payload = json.loads((tmp_path / "t1.json").read_text())
        assert payload == {"a": 1, "b": 2}
        assert (tmp_path / "t1.md").read_text().endswith("\n")

    def test_write_unwritable_directory_raises_reporting_error(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory")
        artifact = Artifact(name="t1", title="T", kind="table", markdown="x")
        with pytest.raises(ReportingError):
            artifact.write(blocker / "nested")


class TestArtifactSpec:
    def test_unknown_renderer_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown renderer"):
            ArtifactSpec(name="t", title="T", kind="table", renderer="nope")

    def test_experiments_must_be_specs(self):
        with pytest.raises(ConfigurationError, match="ExperimentSpec"):
            ArtifactSpec(name="t", title="T", kind="table", renderer="table3",
                         experiments={"explorations": {"kind": "campaign"}})

    def test_fingerprint_tracks_content(self):
        base = ArtifactSpec(name="t", title="T", kind="table",
                            renderer="operator-table",
                            params={"operator_kind": "adder", "samples": 100})
        same = ArtifactSpec(name="t", title="T", kind="table",
                            renderer="operator-table",
                            params={"samples": 100, "operator_kind": "adder"})
        other = ArtifactSpec(name="t", title="T", kind="table",
                             renderer="operator-table",
                             params={"operator_kind": "adder", "samples": 101})
        assert base.fingerprint() == same.fingerprint()
        assert base.fingerprint() != other.fingerprint()

    def test_fingerprint_tracks_experiments(self):
        spec_a = ArtifactSpec(name="t", title="T", kind="table", renderer="table3",
                              experiments={"explorations": _smoke_campaign()})
        spec_b = ArtifactSpec(name="t", title="T", kind="table", renderer="table3",
                              experiments={"explorations":
                                           _smoke_campaign(max_steps=11)})
        assert spec_a.fingerprint() != spec_b.fingerprint()

    def test_render_requires_all_reports(self):
        spec = ArtifactSpec(name="t", title="T", kind="table", renderer="table3",
                            experiments={"explorations": _smoke_campaign()})
        with pytest.raises(ReportingError, match="missing report"):
            spec.render({})

    def test_renderer_output_identity_checked(self, campaign_report):
        @register_renderer("test-wrong-name")
        def _wrong(spec, reports):
            return Artifact(name="other", title="T", kind="table", markdown="x")

        spec = ArtifactSpec(name="t", title="T", kind="table",
                            renderer="test-wrong-name")
        with pytest.raises(ReportingError, match="produced artifact"):
            spec.render({})


class TestRenderers:
    def test_builtin_renderers_registered(self):
        names = renderer_names()
        for name in ("operator-table", "table3", "trace-trends", "reward-curves"):
            assert name in names

    def test_operator_table_artifact(self):
        spec = ArtifactSpec(name="table1", title="Table I", kind="table",
                            renderer="operator-table",
                            params={"operator_kind": "adder", "samples": 200})
        artifact = spec.render({})
        assert "add8_00M" in artifact.markdown
        assert "MRED % (measured)" in artifact.markdown
        names = [op["name"] for op in artifact.data["operators"]]
        assert "add8_00M" in names
        exact = [op for op in artifact.data["operators"]
                 if op["published"]["mred_percent"] == 0.0]
        assert all(op["measured"]["mred_percent"] == 0.0 for op in exact)

    def test_operator_table_without_measurement(self):
        spec = ArtifactSpec(name="table2", title="Table II", kind="table",
                            renderer="operator-table",
                            params={"operator_kind": "multiplier",
                                    "measure": False})
        artifact = spec.render({})
        assert "MRED % (measured)" not in artifact.markdown
        assert all("measured" not in op for op in artifact.data["operators"])

    def test_table3_artifact(self, campaign_report):
        spec = ArtifactSpec(name="table3", title="Table III", kind="table",
                            renderer="table3",
                            experiments={"explorations": _smoke_campaign()})
        artifact = spec.render({"explorations": campaign_report})
        assert "Δpower sol" in artifact.markdown
        (row,) = artifact.data["rows"]
        assert row["benchmark_label"] == "dotproduct:length=8"
        assert row["steps"] == campaign_report.entries[0].result.num_steps
        assert set(row["power_mw"]) == {"minimum", "solution", "maximum"}

    def test_trace_trends_artifact(self, campaign_report):
        spec = ArtifactSpec(name="fig2", title="Fig 2", kind="figure",
                            renderer="trace-trends",
                            experiments={"explorations": _smoke_campaign()},
                            params={"benchmarks": ["dotproduct:length=8"]})
        artifact = spec.render({"explorations": campaign_report})
        payload = artifact.data["benchmarks"]["dotproduct:length=8"]
        assert set(payload["trends"]) == {"power_mw", "time_ns", "accuracy"}
        steps = campaign_report.entries[0].result.num_steps
        assert len(payload["series"]["power_mw"]) == steps

    def test_trace_trends_missing_label_raises(self, campaign_report):
        spec = ArtifactSpec(name="fig2", title="Fig 2", kind="figure",
                            renderer="trace-trends",
                            experiments={"explorations": _smoke_campaign()},
                            params={"benchmarks": ["fir_100"]})
        with pytest.raises(ReportingError, match="absent from its experiment"):
            spec.render({"explorations": campaign_report})

    def test_multi_seed_campaign_rejected_by_exploration_renderers(self):
        report = run_experiment(_smoke_campaign(seeds=[0, 1]))
        spec = ArtifactSpec(name="table3", title="Table III", kind="table",
                            renderer="table3",
                            experiments={"explorations":
                                         _smoke_campaign(seeds=[0, 1])})
        with pytest.raises(ReportingError, match="exactly one exploration"):
            spec.render({"explorations": report})

    def test_operator_table_rejects_unknown_kind(self):
        spec = ArtifactSpec(name="table1", title="T", kind="table",
                            renderer="operator-table",
                            params={"operator_kind": "divider"})
        with pytest.raises(ConfigurationError, match="operator_kind"):
            spec.render({})

    def test_reward_curves_artifact(self, campaign_report):
        spec = ArtifactSpec(name="fig4", title="Fig 4", kind="figure",
                            renderer="reward-curves",
                            experiments={"explorations": _smoke_campaign()},
                            params={"benchmarks": ["dotproduct:length=8"],
                                    "window": 5})
        artifact = spec.render({"explorations": campaign_report})
        payload = artifact.data["benchmarks"]["dotproduct:length=8"]
        assert len(payload["averages"]) == len(payload["window_centers"])
        assert payload["window"] == 5


class TestPaperArtifacts:
    def test_declared_names_and_order(self):
        specs = paper_artifacts("smoke")
        assert tuple(spec.name for spec in specs) == paper_artifact_names()

    def test_unknown_scale_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown paper scale"):
            paper_artifacts("huge")

    def test_exploration_artifacts_share_one_campaign(self):
        specs = {spec.name: spec for spec in paper_artifacts("smoke")}
        fingerprints = {
            spec.experiments["explorations"].fingerprint()
            for spec in (specs["table3"], specs["fig2"], specs["fig3"],
                         specs["fig4"])
        }
        assert len(fingerprints) == 1

    def test_scales_change_fingerprints(self):
        smoke = {s.name: s.fingerprint() for s in paper_artifacts("smoke")}
        default = {s.name: s.fingerprint() for s in paper_artifacts("default")}
        assert all(smoke[name] != default[name] for name in smoke)

    def test_select_artifacts(self):
        specs = paper_artifacts("smoke")
        subset = select_artifacts(specs, ["fig4", "table1"])
        assert tuple(s.name for s in subset) == ("table1", "fig4")
        assert select_artifacts(specs, None) == tuple(specs)
        with pytest.raises(ConfigurationError, match="unknown artifact"):
            select_artifacts(specs, ["table9"])


class TestPaperPipeline:
    @pytest.fixture(scope="class")
    def first_run(self, tmp_path_factory):
        out_dir = tmp_path_factory.mktemp("artifacts")
        pipeline = PaperPipeline(paper_artifacts("smoke"), out_dir=out_dir)
        return out_dir, pipeline.run()

    def test_every_artifact_built_with_files(self, first_run):
        out_dir, result = first_run
        assert tuple(s.name for s in result.statuses) == paper_artifact_names()
        assert all(status.state == "built" for status in result.statuses)
        for status in result.statuses:
            for name in status.files:
                assert (out_dir / name).exists()

    def test_manifest_complete_and_keyed_by_fingerprints(self, first_run):
        out_dir, result = first_run
        manifest = json.loads((out_dir / "manifest.json").read_text())
        assert set(manifest["artifacts"]) == set(paper_artifact_names())
        for spec in paper_artifacts("smoke"):
            entry = manifest["artifacts"][spec.name]
            assert entry["fingerprint"] == spec.fingerprint()
            assert entry["experiments"] == spec.experiment_fingerprints()

    def test_second_run_is_cached_and_manifest_stable(self, first_run):
        out_dir, result = first_run
        before = {f.name: f.read_bytes() for f in Path(out_dir).iterdir()}
        second = PaperPipeline(paper_artifacts("smoke"), out_dir=out_dir).run()
        assert all(status.state == "cached" for status in second.statuses)
        assert not second.reports
        after = {f.name: f.read_bytes() for f in Path(out_dir).iterdir()}
        assert before == after
        # The store summary keeps the same shape whether anything ran or not.
        assert set(second.store) >= {"size", "hits", "misses", "upgrades",
                                     "lookups", "hit_rate", "path"}

    def test_deleted_file_marks_artifact_stale(self, first_run):
        out_dir, _ = first_run
        (out_dir / "fig4.json").unlink()
        rerun = PaperPipeline(paper_artifacts("smoke"), out_dir=out_dir).run()
        states = {status.name: status.state for status in rerun.statuses}
        assert states["fig4"] == "built"
        assert states["table1"] == "cached"
        assert (out_dir / "fig4.json").exists()

    def test_parallel_run_is_bit_identical(self, first_run, tmp_path):
        out_dir, _ = first_run
        parallel = PaperPipeline(paper_artifacts("smoke"), out_dir=tmp_path,
                                 jobs=2).run()
        assert all(status.state == "built" for status in parallel.statuses)
        for name in [f.name for f in Path(out_dir).iterdir()]:
            assert (tmp_path / name).read_bytes() == (out_dir / name).read_bytes()

    def test_selective_run_preserves_other_manifest_entries(self, first_run,
                                                            tmp_path):
        full = PaperPipeline(paper_artifacts("smoke"), out_dir=tmp_path).run()
        assert len(full.statuses) == 6
        subset = select_artifacts(paper_artifacts("smoke"), ["table1"])
        again = PaperPipeline(subset, out_dir=tmp_path, force=True).run()
        manifest = again.manifest["artifacts"]
        assert set(manifest) == set(paper_artifact_names())

    def test_persistent_store_serves_forced_rerun(self, tmp_path):
        store = tmp_path / "paper.sqlite"
        out_dir = tmp_path / "arts"
        PaperPipeline(paper_artifacts("smoke"), out_dir=out_dir,
                      store_path=str(store)).run()
        assert store.exists()
        forced = PaperPipeline(paper_artifacts("smoke"), out_dir=out_dir,
                               store_path=str(store), force=True).run()
        assert all(status.state == "built" for status in forced.statuses)
        assert forced.store["hits"] > 0
        assert forced.store["hits"] == forced.store["lookups"]

    def test_corrupt_manifest_triggers_rebuild(self, tmp_path):
        pipeline = PaperPipeline(
            select_artifacts(paper_artifacts("smoke"), ["table1"]),
            out_dir=tmp_path)
        pipeline.run()
        (tmp_path / "manifest.json").write_text("not json {")
        rerun = PaperPipeline(
            select_artifacts(paper_artifacts("smoke"), ["table1"]),
            out_dir=tmp_path).run()
        assert rerun.statuses[0].state == "built"

    def test_duplicate_artifact_names_rejected(self):
        spec = paper_artifacts("smoke")[0]
        with pytest.raises(ConfigurationError, match="duplicate artifact"):
            PaperPipeline([spec, spec], out_dir="unused")

    def test_empty_artifact_set_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one artifact"):
            PaperPipeline([], out_dir="unused")
