"""Tests for the vectorized frontier engine and front-quality metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents import RandomAgent
from repro.benchmarks import available, create
from repro.dse import (
    AxcDseEnv,
    Explorer,
    FrontQuality,
    ParetoArchive,
    front_coverage,
    front_quality,
    hypervolume_proxy,
    pareto_front,
    pareto_front_bruteforce,
)
from repro.dse.design_space import DesignPoint
from repro.dse.results import StepRecord
from repro.metrics import ObjectiveDeltas


def _record(step, accuracy, power, time, adder=None, multiplier=1):
    return StepRecord(
        step=step,
        action=None,
        point=DesignPoint(adder if adder is not None else step + 1, multiplier, ()),
        deltas=ObjectiveDeltas(accuracy=accuracy, power_mw=power, time_ns=time),
        reward=0.0,
        cumulative_reward=0.0,
    )


def _random_trace(rng, num_steps, key_space=None, decimals=None):
    """Random records; small key spaces force duplicates, rounding forces ties."""
    records = []
    for step in range(num_steps):
        accuracy, power, time = rng.random(3)
        if decimals is not None:
            accuracy, power, time = (
                round(accuracy, decimals), round(power, decimals), round(time, decimals)
            )
        key = step if key_space is None else int(rng.integers(0, key_space))
        records.append(_record(step, accuracy, power, time, adder=key + 1))
    return records


class TestParetoArchive:
    @pytest.mark.parametrize("num_steps,key_space,decimals", [
        (1, None, None),
        (40, None, None),
        (200, 60, None),      # duplicate design points
        (200, None, 1),       # duplicate objective vectors (exact ties)
        (300, 40, 1),         # both at once
    ])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_brute_force_bit_identically(self, seed, num_steps, key_space, decimals):
        rng = np.random.default_rng(seed)
        records = _random_trace(rng, num_steps, key_space=key_space, decimals=decimals)
        expected = pareto_front_bruteforce(records)
        batch = ParetoArchive(records).front()
        incremental = ParetoArchive()
        for record in records:
            incremental.add(record)
        # Same record objects, same (first-occurrence) order — not just equal.
        assert [id(r) for r in batch] == [id(r) for r in expected]
        assert [id(r) for r in incremental.front()] == [id(r) for r in expected]
        assert pareto_front(records) == expected

    def test_empty_archive(self):
        archive = ParetoArchive()
        assert len(archive) == 0
        assert archive.front() == []
        assert archive.front_points() == []
        assert archive.matrix().shape == (0, 3)

    def test_dominated_insert_is_rejected(self):
        archive = ParetoArchive([_record(0, 1.0, 10.0, 10.0)])
        assert not archive.add(_record(1, 2.0, 5.0, 5.0))
        assert len(archive) == 1

    def test_dominating_insert_evicts(self):
        archive = ParetoArchive([_record(0, 2.0, 5.0, 5.0), _record(1, 1.0, 4.0, 4.0)])
        assert archive.add(_record(2, 0.5, 20.0, 20.0))
        assert [record.step for record in archive.front()] == [2]

    def test_exact_ties_all_stay(self):
        tied = [_record(0, 1.0, 5.0, 5.0), _record(1, 1.0, 5.0, 5.0)]
        archive = ParetoArchive(tied)
        assert len(archive) == 2

    def test_duplicate_design_point_first_occurrence_wins(self):
        first = _record(0, 1.0, 5.0, 5.0, adder=3)
        shadow = _record(1, 0.0, 50.0, 50.0, adder=3)  # same point, better values
        archive = ParetoArchive([first, shadow])
        assert archive.front() == [first]
        assert archive.seen == 1

    def test_add_many_returns_front_growth(self):
        archive = ParetoArchive()
        assert archive.add_many([_record(0, 1.0, 5.0, 5.0), _record(1, 2.0, 1.0, 1.0)]) == 1
        assert archive.add_many([_record(2, 0.5, 9.0, 9.0)]) == 1
        assert len(archive) == 1  # the new point evicted the old front

    def test_streaming_equals_batch_on_exploration_trace(self, matmul_env):
        agent = RandomAgent(num_actions=matmul_env.action_space.n, seed=0)
        streamed = ParetoArchive()
        result = Explorer(matmul_env, agent, max_steps=60,
                          on_step=streamed.add).run(seed=0)
        assert streamed.front() == ParetoArchive(result.records).front()

    @pytest.mark.parametrize("name", sorted(available()))
    def test_bit_identical_on_every_benchmark_trace(self, name):
        environment = AxcDseEnv(create(name), evaluation_seed=0)
        agent = RandomAgent(num_actions=environment.action_space.n, seed=0)
        result = Explorer(environment, agent, max_steps=50).run(seed=0)
        expected = pareto_front_bruteforce(result.records)
        actual = pareto_front(result.records)
        assert [id(r) for r in actual] == [id(r) for r in expected]
        # result.front() scores only the agent's own steps (baseline excluded).
        assert result.front() == pareto_front_bruteforce(result.scored_records())
        assert result.front(include_baseline=True) == expected


class TestFrontQuality:
    def test_hypervolume_empty_front_is_zero(self):
        assert hypervolume_proxy([]) == 0.0

    def test_hypervolume_grows_with_new_nondominated_point(self):
        front = [_record(0, 1.0, 5.0, 5.0), _record(1, 3.0, 9.0, 9.0)]
        reference = (5.0, 0.0, 0.0)
        base = hypervolume_proxy(front, reference=reference)
        extended = hypervolume_proxy(front + [_record(2, 0.5, 2.0, 2.0)],
                                     reference=reference)
        assert extended > base

    def test_coverage_of_itself_is_one(self):
        front = [_record(0, 1.0, 5.0, 5.0), _record(1, 3.0, 9.0, 9.0)]
        assert front_coverage(front, front) == 1.0

    def test_coverage_of_dominating_reference_is_zero(self):
        weak = [_record(0, 2.0, 5.0, 5.0)]
        strong = [_record(1, 1.0, 10.0, 10.0)]
        assert front_coverage(weak, strong) == 0.0
        assert front_coverage(strong, weak) == 1.0

    def test_empty_fronts(self):
        front = [_record(0, 1.0, 5.0, 5.0)]
        assert front_coverage(front, []) == 1.0
        assert front_coverage([], front) == 0.0

    def test_front_quality_against_itself(self):
        front = [_record(0, 1.0, 5.0, 5.0), _record(1, 3.0, 9.0, 9.0)]
        quality = front_quality(front, front)
        assert isinstance(quality, FrontQuality)
        assert quality.coverage == 1.0
        assert quality.hypervolume_ratio == pytest.approx(1.0)
        assert quality.front_size == quality.reference_size == 2

    def test_partial_front_scores_below_reference(self):
        reference = [
            _record(0, 0.5, 2.0, 2.0),
            _record(1, 1.0, 5.0, 5.0),
            _record(2, 3.0, 9.0, 9.0),
        ]
        partial = reference[:1]
        quality = front_quality(partial, reference)
        assert quality.coverage == pytest.approx(1 / 3)
        assert quality.hypervolume_ratio < 1.0
