"""Store and journal corruption recovery: degrade loudly, never lie.

The contract under test: a damaged persistence layer may cost a re-run or
stop the program with an actionable one-liner, but it must never feed
wrong results into a report —

* a truncated / non-sqlite / corrupt-record store file raises
  :class:`~repro.errors.ConfigurationError` naming the file and the fix;
* a transient ``sqlite3.OperationalError`` on flush is retried with
  bounded exponential backoff (the backend additionally opens in WAL
  mode with a busy-handler budget), then propagates;
* a checkpoint journal that disagrees with the store (stale journal,
  foreign journal, missing store) degrades to restore-from-journal or a
  cold re-run — both bit-identical to an uninterrupted campaign;
* the CLI's atomic report writer leaves no partial files behind on
  failure.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path

import pytest

from repro.benchmarks import DotProductBenchmark
from repro.cli import main
from repro.dse import Evaluator
from repro.errors import ConfigurationError
from repro.runtime import (
    AgentSpec,
    CampaignCheckpoint,
    EvaluationStore,
    ExplorationJob,
    SerialExecutor,
)


def _job(seed=0, max_steps=10):
    return ExplorationJob(
        benchmark_label="dot",
        benchmark=DotProductBenchmark(length=12),
        seed=seed,
        agent=AgentSpec("random"),
        max_steps=max_steps,
    )


def _jobs(count):
    return [_job(seed=seed) for seed in range(count)]


def _signatures(outcomes):
    return [[record.deltas for record in outcome.result.records]
            for outcome in outcomes]


def _populated_store(path: Path) -> EvaluationStore:
    store = EvaluationStore(path=str(path))
    evaluator = Evaluator(DotProductBenchmark(length=12), seed=0, store=store)
    evaluator.evaluate(evaluator.design_space.initial_point())
    store.flush()
    return store


# ----------------------------------------------------------- corrupt backends


class TestCorruptStoreFiles:
    def test_non_sqlite_file_is_an_actionable_error(self, tmp_path):
        path = tmp_path / "evals.sqlite"
        path.write_bytes(b"this was never a database")
        with pytest.raises(ConfigurationError,
                           match="not a readable store database"):
            EvaluationStore(path=str(path))

    def test_truncated_database_is_an_actionable_error(self, tmp_path):
        path = tmp_path / "evals.sqlite"
        _populated_store(path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])  # crash mid-write
        with pytest.raises(ConfigurationError, match="delete the file"):
            EvaluationStore(path=str(path))

    def test_corrupt_record_blob_is_an_actionable_error(self, tmp_path):
        path = tmp_path / "evals.sqlite"
        _populated_store(path)
        with sqlite3.connect(path) as connection:
            connection.execute("UPDATE evaluations SET record = ?",
                               (b"junk, not a pickle",))
        with pytest.raises(ConfigurationError, match="corrupt record"):
            EvaluationStore(path=str(path))

    def test_corrupt_key_text_is_an_actionable_error(self, tmp_path):
        path = tmp_path / "evals.sqlite"
        _populated_store(path)
        with sqlite3.connect(path) as connection:
            connection.execute("UPDATE evaluations SET key = 'mangled'")
        with pytest.raises(ConfigurationError, match="corrupt record"):
            EvaluationStore(path=str(path))

    def test_intact_store_reloads_bit_identical(self, tmp_path):
        path = tmp_path / "evals.sqlite"
        store = _populated_store(path)
        reloaded = EvaluationStore(path=str(path))
        assert len(reloaded) == len(store) == 1
        [key] = store.keys()
        assert reloaded.get(key).deltas == store.get(key).deltas


class TestFlushBackoff:
    def _store_with_record(self, tmp_path) -> EvaluationStore:
        return _populated_store(tmp_path / "evals.sqlite")

    def test_repeated_transient_locks_are_retried_until_success(
            self, tmp_path, monkeypatch):
        # Regression for the single one-shot retry: three consecutive lock
        # errors exhaust the old behaviour (one retry) but are well within
        # the bounded exponential backoff budget.
        store = self._store_with_record(tmp_path)
        original = store._flush_once
        calls = []
        monkeypatch.setattr(
            "repro.runtime.store.FLUSH_BACKOFF_S", 0.001)

        def locked_thrice():
            calls.append(1)
            if len(calls) <= 3:
                raise sqlite3.OperationalError("database is locked")
            return original()

        monkeypatch.setattr(store, "_flush_once", locked_thrice)
        assert store.flush() == 1
        assert len(calls) == 4

    def test_persistent_lock_propagates_after_bounded_attempts(
            self, tmp_path, monkeypatch):
        from repro.runtime.store import FLUSH_ATTEMPTS

        store = self._store_with_record(tmp_path)
        calls = []
        monkeypatch.setattr("repro.runtime.store.FLUSH_BACKOFF_S", 0.001)

        def always_locked():
            calls.append(1)
            raise sqlite3.OperationalError("database is locked")

        monkeypatch.setattr(store, "_flush_once", always_locked)
        with pytest.raises(sqlite3.OperationalError):
            store.flush()
        assert len(calls) == FLUSH_ATTEMPTS  # bounded, then honesty

    def test_backend_opens_in_wal_mode_with_busy_timeout(self, tmp_path):
        path = tmp_path / "evals.sqlite"
        _populated_store(path)
        connection = sqlite3.connect(path)
        try:
            (mode,) = connection.execute("PRAGMA journal_mode").fetchone()
        finally:
            connection.close()
        assert mode.lower() == "wal"

    def test_flush_survives_a_competing_writer_process(self, tmp_path):
        # Two-process contention: a sibling process takes the sqlite write
        # lock and holds it for ~1.2 s.  With a deliberately tiny busy
        # timeout the old behaviour (one 0.1 s retry) gave up long before
        # the lock cleared; the exponential backoff (~1.55 s of cumulative
        # grace) outlives it.
        import subprocess
        import sys
        import time

        path = tmp_path / "evals.sqlite"
        _populated_store(path)
        holder = subprocess.Popen(
            [sys.executable, "-c", (
                "import sqlite3, sys, time\n"
                "connection = sqlite3.connect(sys.argv[1])\n"
                "connection.execute('BEGIN IMMEDIATE')\n"
                "print('locked', flush=True)\n"
                "time.sleep(1.2)\n"
                "connection.commit()\n"
                "connection.close()\n"
            ), str(path)],
            stdout=subprocess.PIPE, text=True,
        )
        try:
            assert holder.stdout.readline().strip() == "locked"
            contended = EvaluationStore(path=str(path), busy_timeout_s=0.05)
            started = time.perf_counter()
            assert contended.flush() == 1  # old behaviour: OperationalError
            assert time.perf_counter() - started < 10.0
        finally:
            holder.wait(timeout=30)


# ------------------------------------------- journal/store disagreement


class TestJournalStoreDisagreement:
    """A wrong resume is worse than a slow one: disagreement never lies."""

    def _run_with_journal(self, tmp_path):
        store_path = tmp_path / "evals.sqlite"
        journal = tmp_path / "evals.sqlite.checkpoint.jsonl"
        store = EvaluationStore(path=str(store_path))
        outcomes = SerialExecutor().run(
            _jobs(3), store=store, checkpoint=CampaignCheckpoint(journal))
        return store_path, journal, _signatures(outcomes)

    def test_journal_without_store_still_restores_correctly(self, tmp_path):
        # The journal carries the pickled results themselves, so a deleted
        # store costs warm-start, not correctness.
        store_path, journal, expected = self._run_with_journal(tmp_path)
        store_path.unlink()
        checkpoint = CampaignCheckpoint(journal)
        resumed = SerialExecutor().run(
            _jobs(3), store=EvaluationStore(path=str(store_path)),
            checkpoint=checkpoint)
        assert checkpoint.restored == 3
        assert _signatures(resumed) == expected

    def test_foreign_journal_never_matches(self, tmp_path):
        # A journal left behind by a different campaign: fingerprints are
        # content hashes, so nothing restores and everything re-runs.
        _, journal, _ = self._run_with_journal(tmp_path)
        foreign_jobs = [_job(seed=seed + 100) for seed in range(3)]
        clean = _signatures(SerialExecutor().run(foreign_jobs))
        checkpoint = CampaignCheckpoint(journal)
        outcomes = SerialExecutor().run(foreign_jobs, checkpoint=checkpoint)
        assert checkpoint.restored == 0
        assert _signatures(outcomes) == clean

    def test_store_without_journal_reruns_bit_identical(self, tmp_path):
        # The inverse disagreement: warm store, missing journal.  Every job
        # re-executes against the warm store; results never change.
        store_path, journal, expected = self._run_with_journal(tmp_path)
        journal.unlink()
        checkpoint = CampaignCheckpoint(journal)
        outcomes = SerialExecutor().run(
            _jobs(3), store=EvaluationStore(path=str(store_path)),
            checkpoint=checkpoint)
        assert checkpoint.restored == 0
        assert _signatures(outcomes) == expected

    def test_stale_journal_subset_reruns_only_the_rest(self, tmp_path):
        # Journal knows 3 of 5 jobs (a kill landed between flushes): the
        # known 3 restore, the other 2 execute, results match a clean run.
        store_path, journal, _ = self._run_with_journal(tmp_path)
        clean = _signatures(SerialExecutor().run(_jobs(5)))
        checkpoint = CampaignCheckpoint(journal)
        outcomes = SerialExecutor().run(
            _jobs(5), store=EvaluationStore(path=str(store_path)),
            checkpoint=checkpoint)
        assert checkpoint.restored == 3
        assert _signatures(outcomes) == clean


# --------------------------------------------------------- atomic CLI output


class TestAtomicReportWriter:
    def _spec_path(self, tmp_path) -> Path:
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "kind": "explore",
            "benchmarks": ["dotproduct:length=12"],
            "agents": ["random"],
            "seeds": [0],
            "max_steps": 10,
        }))
        return path

    def test_unwritable_destination_leaves_no_partial_file(self, tmp_path,
                                                           capsys):
        spec_path = self._spec_path(tmp_path)
        out_dir = tmp_path / "report.json"
        out_dir.mkdir()  # a directory where the report file should go
        assert main(["run", str(spec_path), "--out", str(out_dir)]) == 2
        assert "cannot write" in capsys.readouterr().err
        # The temporary never survives a failed replace.
        assert not (tmp_path / "report.json.tmp").exists()
        assert list(out_dir.iterdir()) == []

    def test_successful_write_is_complete_and_tmp_free(self, tmp_path, capsys):
        spec_path = self._spec_path(tmp_path)
        out = tmp_path / "reports" / "report.json"
        assert main(["run", str(spec_path), "--out", str(out)]) == 0
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["ok"] is True
        assert not out.with_name(out.name + ".tmp").exists()
