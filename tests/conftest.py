"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents import QLearningAgent
from repro.agents.schedules import LinearDecayEpsilon
from repro.benchmarks import DotProductBenchmark, FirBenchmark, MatMulBenchmark
from repro.dse import AxcDseEnv, Evaluator
from repro.operators import default_catalog


@pytest.fixture(scope="session")
def catalog():
    """The paper's operator catalog (Tables I and II)."""
    return default_catalog()


@pytest.fixture(scope="session")
def rng():
    """A seeded random generator for reproducible test data."""
    return np.random.default_rng(1234)


@pytest.fixture
def small_matmul():
    """A small matrix-multiplication benchmark that keeps tests fast."""
    return MatMulBenchmark(rows=4, inner=4, cols=4)


@pytest.fixture
def small_fir():
    """A small FIR benchmark that keeps tests fast."""
    return FirBenchmark(num_samples=20, num_taps=4)


@pytest.fixture
def dot_benchmark():
    """The smallest benchmark: a 16-element dot product."""
    return DotProductBenchmark(length=16)


@pytest.fixture
def matmul_evaluator(small_matmul):
    """Evaluator over the small matmul benchmark, width-restricted as in the paper."""
    return Evaluator(small_matmul, seed=0)


@pytest.fixture
def matmul_env(small_matmul):
    """Environment over the small matmul benchmark."""
    return AxcDseEnv(small_matmul, evaluation_seed=0)


@pytest.fixture
def quick_agent(matmul_env):
    """A Q-learning agent sized for the small matmul environment."""
    return QLearningAgent(
        num_actions=matmul_env.action_space.n,
        epsilon=LinearDecayEpsilon(start=1.0, end=0.1, decay_steps=100),
        seed=0,
    )
