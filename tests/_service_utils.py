"""Shared plumbing for the evaluation-service test suites.

Starts real ``repro-axc serve`` daemons as subprocesses (the unit under
test is the whole process: signal handling, drain, socket cleanup) and
real client subprocesses, so the concurrency suite exercises genuine
multi-process contention rather than threads sharing one interpreter.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional, Sequence

SRC = str(Path(__file__).resolve().parent.parent / "src")

#: One client submission: run the spec against the daemon, dump the result.
CLIENT_SCRIPT = """
import json, sys
spec_path, address, out_path = sys.argv[1:4]
from repro.experiments.spec import ExperimentSpec
from repro.service import ServiceClient
spec = ExperimentSpec.from_dict(json.load(open(spec_path)))
client = ServiceClient(address)
report = client.run(spec, timeout_s=300)
with open(out_path, "w") as handle:
    json.dump({"ok": report.ok, "ticket": report.ticket,
               "coalesced": report.coalesced,
               "canonical": report.canonical_json(),
               "store": report.store}, handle)
"""


def service_env(extra: Optional[Dict[str, str]] = None) -> Dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    if extra:
        env.update(extra)
    return env


@contextmanager
def running_daemon(*serve_args: str, env_extra: Optional[Dict[str, str]] = None):
    """Yield ``(process, address)`` for a live daemon; SIGTERM it on exit."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", *serve_args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=service_env(env_extra),
    )
    ready = process.stdout.readline()
    if "ready on" not in ready:
        process.kill()
        rest = process.stdout.read()
        raise AssertionError(f"daemon never became ready: {ready!r}\n{rest}")
    address = ready.split("ready on ", 1)[1].split()[0]
    try:
        yield process, address
    finally:
        if process.poll() is None:
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=60)
            except subprocess.TimeoutExpired:  # pragma: no cover - CI guard
                process.kill()
                process.wait()


def run_clients(spec_paths: Sequence[Path], address: str, out_dir: Path,
                env_extra: Optional[Dict[str, str]] = None) -> List[dict]:
    """Run one client process per spec concurrently; return their results."""
    processes = []
    out_paths = []
    for index, spec_path in enumerate(spec_paths):
        out_path = out_dir / f"client{index}.json"
        out_paths.append(out_path)
        processes.append(subprocess.Popen(
            [sys.executable, "-c", CLIENT_SCRIPT, str(spec_path), address,
             str(out_path)],
            env=service_env(env_extra), stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True,
        ))
    failures = []
    for process, out_path in zip(processes, out_paths):
        output = process.communicate(timeout=300)[0]
        if process.returncode != 0:
            failures.append(f"client for {out_path.name} exited "
                            f"{process.returncode}:\n{output}")
    if failures:
        raise AssertionError("\n".join(failures))
    return [json.loads(path.read_text()) for path in out_paths]


def daemon_stats(address: str) -> dict:
    """One ``stats`` round-trip from inside the test process."""
    sys.path.insert(0, SRC)
    from repro.service import ServiceClient

    return ServiceClient(address).stats()
