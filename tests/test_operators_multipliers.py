"""Tests for exact and approximate multiplier behavioural models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.operators import (
    BrokenArrayMultiplier,
    DrumMultiplier,
    ExactMultiplier,
    LogMultiplier,
    OperandTruncationMultiplier,
    characterize,
)


class TestExactMultiplier:
    def test_scalar_product(self):
        multiplier = ExactMultiplier(8)
        assert int(multiplier.apply(7, 9)) == 63

    def test_vectorised_product(self):
        multiplier = ExactMultiplier(8)
        a = np.arange(1, 20)
        b = np.arange(21, 40)
        np.testing.assert_array_equal(multiplier.apply(a, b), a * b)

    def test_signed_products(self):
        multiplier = ExactMultiplier(8)
        assert int(multiplier.apply(-5, 6)) == -30
        assert int(multiplier.apply(-5, -6)) == 30

    def test_wide_operands_are_exact(self):
        multiplier = ExactMultiplier(32)
        assert int(multiplier.apply(1_000_003, 999_999)) == 1_000_003 * 999_999

    def test_mred_is_zero(self):
        report = characterize(ExactMultiplier(8))
        assert report.mred_percent == 0.0


class TestOperandTruncationMultiplier:
    def test_zero_cut_is_exact(self):
        multiplier = OperandTruncationMultiplier(8, cut=0)
        a = np.arange(1, 50)
        b = np.arange(50, 99)
        np.testing.assert_array_equal(multiplier.apply(a, b), a * b)

    def test_never_overestimates(self):
        multiplier = OperandTruncationMultiplier(8, cut=3)
        rng = np.random.default_rng(0)
        a = rng.integers(0, 256, 500)
        b = rng.integers(0, 256, 500)
        assert np.all(multiplier.apply(a, b) <= a * b)

    def test_mred_increases_with_cut(self):
        mreds = [
            characterize(OperandTruncationMultiplier(8, cut=cut), samples=4000).mred_percent
            for cut in (1, 3, 5)
        ]
        assert mreds[0] < mreds[1] < mreds[2]

    def test_invalid_cut_raises(self):
        with pytest.raises(ConfigurationError):
            OperandTruncationMultiplier(8, cut=8)


class TestBrokenArrayMultiplier:
    def test_zero_omitted_is_exact(self):
        multiplier = BrokenArrayMultiplier(8, omitted=0)
        a = np.arange(0, 60)
        b = np.arange(60, 120)
        np.testing.assert_array_equal(multiplier.apply(a, b), a * b)

    def test_never_overestimates(self):
        multiplier = BrokenArrayMultiplier(8, omitted=6)
        rng = np.random.default_rng(1)
        a = rng.integers(0, 256, 300)
        b = rng.integers(0, 256, 300)
        assert np.all(multiplier.apply(a, b) <= a * b)

    def test_error_bounded_by_omitted_mass(self):
        omitted = 5
        multiplier = BrokenArrayMultiplier(8, omitted=omitted)
        rng = np.random.default_rng(2)
        a = rng.integers(0, 256, 300)
        b = rng.integers(0, 256, 300)
        errors = a * b - multiplier.apply(a, b)
        assert np.all(errors <= 8 * (1 << omitted))

    def test_mred_increases_with_omitted(self):
        small = characterize(BrokenArrayMultiplier(8, omitted=3), samples=4000).mred_percent
        large = characterize(BrokenArrayMultiplier(8, omitted=8), samples=4000).mred_percent
        assert small < large

    def test_invalid_omitted_raises(self):
        with pytest.raises(ConfigurationError):
            BrokenArrayMultiplier(8, omitted=16)


class TestLogMultiplier:
    def test_powers_of_two_are_exact(self):
        multiplier = LogMultiplier(8)
        for a in (1, 2, 4, 8, 16, 32):
            for b in (1, 2, 4, 64, 128):
                assert int(multiplier.apply(a, b)) == a * b

    def test_never_overestimates(self):
        multiplier = LogMultiplier(8)
        rng = np.random.default_rng(3)
        a = rng.integers(1, 256, 500)
        b = rng.integers(1, 256, 500)
        assert np.all(multiplier.apply(a, b) <= a * b)

    def test_zero_operand_gives_zero(self):
        multiplier = LogMultiplier(8)
        assert int(multiplier.apply(0, 200)) == 0
        assert int(multiplier.apply(37, 0)) == 0

    def test_mitchell_error_bound(self):
        # Mitchell's approximation under-estimates by at most ~11.1 %.
        multiplier = LogMultiplier(8)
        rng = np.random.default_rng(4)
        a = rng.integers(1, 256, 2000)
        b = rng.integers(1, 256, 2000)
        exact = a * b
        relative = (exact - multiplier.apply(a, b)) / exact
        assert float(relative.max()) <= 0.12

    def test_mred_in_expected_range(self):
        report = characterize(LogMultiplier(8), samples=8000)
        assert 2.0 < report.mred_percent < 6.0


class TestDrumMultiplier:
    def test_exact_for_small_operands(self):
        multiplier = DrumMultiplier(8, k=4)
        a = np.arange(0, 16)
        b = np.arange(0, 16)
        np.testing.assert_array_equal(multiplier.apply(a, b), a * b)

    def test_relative_error_independent_of_magnitude(self):
        multiplier = DrumMultiplier(16, k=4)
        rng = np.random.default_rng(5)
        small_a = rng.integers(64, 256, 2000)
        small_b = rng.integers(64, 256, 2000)
        large_a = small_a * 128
        large_b = small_b * 128
        small_rel = np.abs(small_a * small_b - multiplier.apply(small_a, small_b)) / (small_a * small_b)
        large_rel = np.abs(large_a * large_b - multiplier.apply(large_a, large_b)) / (large_a * large_b)
        assert abs(float(small_rel.mean()) - float(large_rel.mean())) < 0.02

    def test_mred_decreases_with_k(self):
        coarse = characterize(DrumMultiplier(8, k=2), samples=4000).mred_percent
        fine = characterize(DrumMultiplier(8, k=6), samples=4000).mred_percent
        assert fine < coarse

    def test_zero_operand_gives_zero(self):
        multiplier = DrumMultiplier(8, k=3)
        assert int(multiplier.apply(0, 255)) == 0

    def test_invalid_k_raises(self):
        with pytest.raises(ConfigurationError):
            DrumMultiplier(8, k=1)
        with pytest.raises(ConfigurationError):
            DrumMultiplier(8, k=9)

    def test_signed_products_keep_sign(self):
        multiplier = DrumMultiplier(8, k=3)
        assert int(multiplier.apply(-100, 50)) < 0
        assert int(multiplier.apply(-100, -50)) > 0
