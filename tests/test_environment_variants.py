"""Tests for environment / agent combinations beyond the defaults.

Covers the alternative reward function, the threshold-aware state encoder,
gymlite wrappers around the DSE environment, and the termination paths of
the exploration — configuration variants the ablation benches rely on.
"""

from __future__ import annotations

import numpy as np

import repro.gymlite as gym
from repro.agents import QLearningAgent, ThresholdBucketEncoder
from repro.benchmarks import DotProductBenchmark
from repro.dse import (
    AxcDseEnv,
    DesignPoint,
    ScalarizedReward,
    explore,
)


class TestScalarizedRewardEnvironment:
    def test_exploration_runs_with_dense_reward(self, small_matmul):
        environment = AxcDseEnv(small_matmul, reward_function=ScalarizedReward())
        agent = QLearningAgent(num_actions=environment.action_space.n, epsilon=0.3, seed=0)
        result = explore(environment, agent, max_steps=60, seed=0)
        assert result.num_steps >= 2
        # The dense reward is continuous, not the +-1/+-R of Algorithm 1.
        rewards = set(np.round(result.reward_series()[1:], 6))
        assert len(rewards) > 4

    def test_dense_reward_terminates_on_cumulative_maximum(self, small_matmul):
        environment = AxcDseEnv(small_matmul, reward_function=ScalarizedReward(),
                                max_cumulative_reward=5.0)
        agent = QLearningAgent(num_actions=environment.action_space.n, epsilon=0.5, seed=0)
        result = explore(environment, agent, max_steps=400, seed=0)
        if result.terminated:
            assert result.records[-1].cumulative_reward >= 5.0


class TestAlgorithm1Termination:
    def test_terminate_flag_at_most_aggressive_feasible_point(self, small_matmul):
        # Force a huge accuracy threshold so the most aggressive point is
        # feasible; stepping onto it must terminate with the maximum reward.
        from repro.dse import ExplorationThresholds

        environment = AxcDseEnv(
            small_matmul,
            thresholds=ExplorationThresholds(accuracy=1e12, power_mw=0.0, time_ns=0.0),
            max_cumulative_reward=100.0,
        )
        environment.reset(options={"design_point": DesignPoint(
            environment.design_space.num_adders,
            environment.design_space.num_multipliers,
            (True, True, False),
        )})
        # Toggle the last variable: the new state is the most aggressive point.
        toggle_last = 4 + environment.design_space.num_variables - 1
        _, reward, terminated, _, info = environment.step(toggle_last)
        assert terminated
        assert reward == 100.0
        assert info["terminate_flag"]

    def test_cumulative_reward_termination(self, small_matmul):
        from repro.dse import ExplorationThresholds

        # Every feasible step earns +1 with these thresholds, so the episode
        # must stop once the cumulative reward reaches the small maximum.
        environment = AxcDseEnv(
            small_matmul,
            thresholds=ExplorationThresholds(accuracy=1e12, power_mw=0.0, time_ns=0.0),
            max_cumulative_reward=5.0,
        )
        agent = QLearningAgent(num_actions=environment.action_space.n, epsilon=1.0, seed=0)
        result = explore(environment, agent, max_steps=200, seed=0)
        assert result.terminated
        assert result.records[-1].cumulative_reward >= 5.0
        assert result.num_steps <= 30


class TestThresholdBucketEncoder:
    def test_agent_with_threshold_encoder_explores(self, small_matmul):
        environment = AxcDseEnv(small_matmul)
        agent = QLearningAgent(
            num_actions=environment.action_space.n,
            epsilon=0.3,
            state_encoder=ThresholdBucketEncoder(environment.thresholds),
            seed=0,
        )
        result = explore(environment, agent, max_steps=80, seed=0)
        assert result.num_steps >= 2
        # The Q-table keys carry the three compliance flags.
        some_state = next(iter(agent.q_table))
        assert len(some_state) == 6


class TestGymliteIntegration:
    def test_time_limit_wrapper_truncates_the_dse_env(self):
        environment = gym.TimeLimit(AxcDseEnv(DotProductBenchmark(length=8)),
                                    max_episode_steps=7)
        environment.reset(seed=0)
        truncated = False
        steps = 0
        while not truncated and steps < 20:
            *_, truncated, _ = environment.step(0)
            steps += 1
        assert truncated
        assert steps == 7

    def test_record_episode_statistics_wrapper(self):
        environment = gym.RecordEpisodeStatistics(
            gym.TimeLimit(AxcDseEnv(DotProductBenchmark(length=8)), max_episode_steps=5)
        )
        environment.reset(seed=0)
        info = {}
        done = False
        while not done:
            _, _, terminated, truncated, info = environment.step(2)
            done = terminated or truncated
        assert info["episode"]["l"] == 5

    def test_registered_env_with_custom_kwargs(self):
        environment = gym.make("repro/AxcDse-v0", benchmark=DotProductBenchmark(length=8),
                               action_scheme="compact", max_episode_steps=3)
        assert environment.action_space.n == 3
