"""Concurrency stress tests: many client processes, one daemon, one truth.

The correctness bar for the evaluation service: concurrent clients
sharing one daemon must observe a single consistent evaluation history —

* identical submissions coalesce onto one ticket and are evaluated once
  (zero duplicate evaluations for identical fingerprints);
* every client's report is byte-identical to a serial
  :func:`~repro.experiments.runner.run_experiment` of its spec;
* overlapping (not identical) specs dedup at the evaluation level: the
  store performs exactly the union's worth of evaluations;
* the lifetime store counters stay consistent
  (hits + misses + upgrades == lookups) and survive the drain flush.

Clients are real subprocesses hammering a real daemon subprocess over a
unix socket — genuine multi-process contention, not threads.
"""

from __future__ import annotations

import json

from repro.experiments.runner import run_experiment
from repro.experiments.spec import ExperimentSpec
from repro.runtime.store import inspect_store

from _service_utils import daemon_stats, run_clients, running_daemon


def _spec_payload(seeds):
    return {
        "kind": "campaign",
        "benchmarks": ["dotproduct:length=12"],
        "agents": ["random"],
        "seeds": list(seeds),
        "max_steps": 15,
    }


def _write_spec(tmp_path, name, seeds):
    path = tmp_path / name
    path.write_text(json.dumps(_spec_payload(seeds)))
    return path


def _serial_report(seeds):
    return run_experiment(ExperimentSpec.from_dict(_spec_payload(seeds)))


class TestIdenticalSubmissions:
    def test_n_clients_coalesce_to_one_evaluation_pass(self, tmp_path):
        spec_path = _write_spec(tmp_path, "spec.json", [0, 1])
        serial = _serial_report([0, 1])
        socket_path = str(tmp_path / "evald.sock")
        store_path = str(tmp_path / "evals.sqlite")

        with running_daemon("--socket", socket_path, "--store", store_path) \
                as (daemon, address):
            results = run_clients([spec_path] * 4, address, tmp_path)
            stats = daemon_stats(address)

        # Every client saw the same bytes, and those bytes are the serial
        # run's bytes.
        canonicals = {result["canonical"] for result in results}
        assert canonicals == {serial.canonical_json()}
        assert all(result["ok"] for result in results)

        # One ticket: the first submit created it, the rest attached.
        assert len({result["ticket"] for result in results}) == 1
        assert sum(result["coalesced"] for result in results) == 3

        # Zero duplicate evaluations: the daemon's cold store missed
        # exactly as often as a cold serial run of the one spec.
        assert stats["submitted"] == 4
        assert stats["coalesced"] == 3
        assert stats["store"]["misses"] == serial.store["misses"]
        assert stats["tickets"] == {"queued": 0, "running": 0,
                                    "done": 1, "failed": 0}
        assert daemon.wait(timeout=60) == 0

    def test_respelled_spec_gets_its_own_report_but_no_new_evaluations(
            self, tmp_path):
        # Same experiment, different spelling: reversed seed order changes
        # the exact fingerprint (and the report's entry order) but not the
        # semantics — the daemon serves it a distinct ticket whose every
        # evaluation replays from the shared store.
        forward = _write_spec(tmp_path, "forward.json", [0, 1])
        reversed_ = _write_spec(tmp_path, "reversed.json", [1, 0])
        socket_path = str(tmp_path / "evald.sock")

        with running_daemon("--socket", socket_path) as (_daemon, address):
            results = run_clients([forward, reversed_], address, tmp_path)
            stats = daemon_stats(address)

        assert results[0]["canonical"] == _serial_report([0, 1]).canonical_json()
        assert results[1]["canonical"] == _serial_report([1, 0]).canonical_json()
        assert results[0]["ticket"] != results[1]["ticket"]
        # The union of both specs is either one of them: no extra misses.
        assert stats["store"]["misses"] == _serial_report([0, 1]).store["misses"]


class TestOverlappingSubmissions:
    def test_overlap_dedups_to_the_union_of_evaluations(self, tmp_path):
        # seeds {0,1} ⊂ {0,1,2}: whichever order the daemon serves them,
        # the store must evaluate exactly the superset's unique points.
        small = _write_spec(tmp_path, "small.json", [0, 1])
        large = _write_spec(tmp_path, "large.json", [0, 1, 2])
        serial_small = _serial_report([0, 1])
        serial_large = _serial_report([0, 1, 2])
        socket_path = str(tmp_path / "evald.sock")

        with running_daemon("--socket", socket_path) as (_daemon, address):
            results = run_clients([small, large, small, large],
                                  address, tmp_path)
            stats = daemon_stats(address)

        assert results[0]["canonical"] == serial_small.canonical_json()
        assert results[1]["canonical"] == serial_large.canonical_json()
        assert results[2]["canonical"] == serial_small.canonical_json()
        assert results[3]["canonical"] == serial_large.canonical_json()
        assert stats["coalesced"] == 2  # the two repeats attached
        assert stats["store"]["misses"] == serial_large.store["misses"]


class TestCounterConsistency:
    def test_lifetime_counters_add_up_and_survive_the_drain(self, tmp_path):
        spec_path = _write_spec(tmp_path, "spec.json", [0, 1])
        socket_path = str(tmp_path / "evald.sock")
        store_path = str(tmp_path / "evals.sqlite")

        with running_daemon("--socket", socket_path, "--store", store_path) \
                as (daemon, address):
            run_clients([spec_path] * 3, address, tmp_path)
            stats = daemon_stats(address)
        assert daemon.wait(timeout=60) == 0

        for section in ("store", "lifetime"):
            counters = stats[section]
            assert counters["hits"] + counters["misses"] + counters["upgrades"] \
                == counters["lookups"], section

        # The drain flushed the store: the persisted lifetime counters on
        # disk match what the daemon reported over the wire.
        persisted = inspect_store(store_path)["lifetime"]
        assert persisted["lookups"] == stats["lifetime"]["lookups"]
        assert persisted["hits"] == stats["lifetime"]["hits"]
        assert persisted["upgrades"] == stats["lifetime"]["upgrades"]
