"""Tests for the accuracy metrics and objective deltas."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics import (
    ObjectiveDeltas,
    accuracy_degradation,
    compute_deltas,
    max_absolute_error,
    mean_absolute_error,
    mean_error,
    relative_accuracy_loss,
    root_mean_squared_error,
)
from repro.operators.energy import RunCost


class TestAccuracyMetrics:
    def test_mae_of_identical_outputs_is_zero(self):
        outputs = np.array([1, 2, 3])
        assert mean_absolute_error(outputs, outputs) == 0.0

    def test_mae_matches_hand_computation(self):
        assert mean_absolute_error([10, 20, 30], [12, 18, 30]) == pytest.approx(4 / 3)

    def test_mean_error_is_signed_equation_2(self):
        # Equation 2 averages exact - approx without the absolute value.
        assert mean_error([10, 20], [12, 18]) == pytest.approx(0.0)
        assert mean_absolute_error([10, 20], [12, 18]) == pytest.approx(2.0)

    def test_accuracy_degradation_default_is_mae(self):
        assert accuracy_degradation([10, 20], [12, 18]) == pytest.approx(2.0)
        assert accuracy_degradation([10, 20], [12, 18], signed=True) == pytest.approx(0.0)

    def test_relative_accuracy_loss(self):
        assert relative_accuracy_loss([10, 10], [9, 9]) == pytest.approx(0.1)

    def test_relative_loss_with_zero_outputs(self):
        assert relative_accuracy_loss([0, 0], [0, 0]) == 0.0
        assert relative_accuracy_loss([0, 0], [1, 0]) == float("inf")

    def test_rmse_and_max_error(self):
        assert root_mean_squared_error([0, 0], [3, 4]) == pytest.approx(np.sqrt(12.5))
        assert max_absolute_error([0, 0], [3, 4]) == 4.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            mean_absolute_error([1, 2], [1, 2, 3])

    def test_empty_outputs_raise(self):
        with pytest.raises(ConfigurationError):
            mean_absolute_error([], [])

    def test_multidimensional_outputs_are_flattened(self):
        exact = np.arange(6).reshape(2, 3)
        approx = exact + 1
        assert mean_absolute_error(exact, approx) == pytest.approx(1.0)


class TestObjectiveDeltas:
    def test_compute_deltas(self):
        exact = np.array([100, 200])
        approx = np.array([90, 210])
        precise_cost = RunCost(power_mw=50.0, time_ns=100.0, operation_count=10)
        approx_cost = RunCost(power_mw=20.0, time_ns=60.0, operation_count=10)
        deltas = compute_deltas(exact, approx, precise_cost, approx_cost)
        assert deltas.accuracy == pytest.approx(10.0)
        assert deltas.power_mw == pytest.approx(30.0)
        assert deltas.time_ns == pytest.approx(40.0)

    def test_signed_accuracy_option(self):
        exact = np.array([100, 200])
        approx = np.array([90, 210])
        deltas = compute_deltas(exact, approx, RunCost(), RunCost(), signed_accuracy=True)
        assert deltas.accuracy == pytest.approx(0.0)

    def test_as_tuple_and_str(self):
        deltas = ObjectiveDeltas(accuracy=1.0, power_mw=2.0, time_ns=3.0)
        assert deltas.as_tuple() == (1.0, 2.0, 3.0)
        assert "Δacc" in str(deltas)

    def test_precise_version_has_zero_deltas(self):
        exact = np.array([5, 6, 7])
        cost = RunCost(power_mw=10.0, time_ns=20.0, operation_count=3)
        deltas = compute_deltas(exact, exact, cost, cost)
        assert deltas.as_tuple() == (0.0, 0.0, 0.0)
